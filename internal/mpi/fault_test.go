package mpi

import (
	"errors"
	"testing"
	"time"
)

func TestRankDownErrorMatchesSentinel(t *testing.T) {
	cause := errors.New("boom")
	err := error(&RankDownError{Rank: 3, Cause: cause})
	if !errors.Is(err, ErrRankDown) {
		t.Fatal("RankDownError must match ErrRankDown")
	}
	if !errors.Is(err, cause) {
		t.Fatal("RankDownError must unwrap to its cause")
	}
	if got := DownRank(err); got != 3 {
		t.Fatalf("DownRank = %d, want 3", got)
	}
	if got := DownRank(errors.New("other")); got != -1 {
		t.Fatalf("DownRank(non-rank error) = %d, want -1", got)
	}
}

// A crashed rank fails sends to it immediately and receives from it once its
// already-delivered messages drain — in-flight data survives the crash.
func TestFaultCrashFailsSendsAndDrainsRecvs(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	c0 := w.MustComm(0)
	c1 := w.MustComm(1)

	// Rank 1 sends once, then dies.
	if err := c1.Send(0, 7, []byte("pre")); err != nil {
		t.Fatal(err)
	}
	w.Crash(1)

	// The in-flight message is still delivered...
	got, err := c0.Recv(1, 7)
	if err != nil || string(got) != "pre" {
		t.Fatalf("pre-crash message: %q, %v", got, err)
	}
	// ...then receives from the dead rank fail instead of hanging.
	if _, err := c0.Recv(1, 7); !errors.Is(err, ErrRankDown) {
		t.Fatalf("recv from dead rank: %v, want ErrRankDown", err)
	}
	if _, _, err := c0.TryRecv(1, 7); !errors.Is(err, ErrRankDown) {
		t.Fatalf("tryRecv from dead rank: %v, want ErrRankDown", err)
	}
	// Sends to the dead rank fail too.
	if err := c0.Send(1, 7, []byte("x")); !errors.Is(err, ErrRankDown) {
		t.Fatalf("send to dead rank: %v, want ErrRankDown", err)
	}
	if got := w.DownRanks(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DownRanks = %v, want [1]", got)
	}
}

// A receive already blocked when the crash lands must wake up and fail, not
// wait forever.
func TestFaultCrashWakesBlockedRecv(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	c0 := w.MustComm(0)

	errc := make(chan error, 1)
	go func() {
		_, err := c0.Recv(1, 9)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the recv block
	w.Crash(1)
	select {
	case err := <-errc:
		if !errors.Is(err, ErrRankDown) {
			t.Fatalf("blocked recv: %v, want ErrRankDown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked recv did not wake after crash")
	}
}

func TestFaultTickCrashAtStep(t *testing.T) {
	w := NewWorld(3)
	defer w.Close()
	inj := w.InjectFaults(FaultPlan{CrashAtStep: map[int]int{2: 5}})

	for step := 0; step < 5; step++ {
		for r := 0; r < 3; r++ {
			if err := inj.Tick(r, step); err != nil {
				t.Fatalf("unexpected crash at step %d rank %d: %v", step, r, err)
			}
		}
	}
	if err := inj.Tick(2, 5); !errors.Is(err, ErrRankDown) {
		t.Fatalf("Tick(2, 5) = %v, want ErrRankDown", err)
	}
	if !inj.Crashed(2) || inj.Crashed(0) {
		t.Fatal("crash bookkeeping wrong")
	}
	// The victim's own comm refuses further traffic.
	c2 := w.MustComm(2)
	if err := c2.Send(0, 1, []byte("x")); !errors.Is(err, ErrRankDown) {
		t.Fatalf("send from crashed rank: %v, want ErrRankDown", err)
	}
	if _, err := c2.Recv(0, 1); !errors.Is(err, ErrRankDown) {
		t.Fatalf("recv on crashed rank: %v, want ErrRankDown", err)
	}
}

// Equal seeds must drop exactly the same messages regardless of timing.
func TestFaultDeterministicDrops(t *testing.T) {
	pattern := func(seed int64) []bool {
		w := NewWorld(2)
		defer w.Close()
		inj := w.InjectFaults(FaultPlan{Seed: seed, DropProb: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = inj.drop(0)
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop %d differs across equal-seed runs", i)
		}
	}
	diff := 0
	for i, v := range pattern(43) {
		if v != a[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical drop patterns")
	}
	drops := 0
	for _, v := range a {
		if v {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Fatalf("drop count %d/%d not probabilistic", drops, len(a))
	}
}

// With drops on and a detection timeout, a lost message surfaces as a
// presumed-dead source instead of a hang.
func TestFaultDropWithDetectTimeout(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	w.InjectFaults(FaultPlan{DropProb: 1, DetectTimeout: 50 * time.Millisecond})
	c0 := w.MustComm(0)
	c1 := w.MustComm(1)

	if err := c1.Send(0, 3, []byte("lost")); err != nil {
		t.Fatal(err) // the drop is silent
	}
	start := time.Now()
	_, err := c0.Recv(1, 3)
	if !errors.Is(err, ErrRankDown) {
		t.Fatalf("recv of dropped message: %v, want ErrRankDown", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond || elapsed > 5*time.Second {
		t.Fatalf("detection took %v, want about the 50ms timeout", elapsed)
	}
}

func TestFaultSlowRankDelaysSends(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	w.InjectFaults(FaultPlan{Slow: map[int]LinkProfile{
		1: {Latency: 30 * time.Millisecond},
	}})
	c0 := w.MustComm(0)
	c1 := w.MustComm(1)

	start := time.Now()
	if err := c1.Send(0, 4, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("straggler send took %v, want >= 30ms", elapsed)
	}
	start = time.Now()
	if err := c0.Send(1, 4, []byte("fast")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Fatalf("non-straggler send took %v, want fast", elapsed)
	}
	if _, err := c0.Recv(1, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Recv(0, 4); err != nil {
		t.Fatal(err)
	}
}

// Collectives must fail on every survivor, not deadlock, when a member dies.
func TestFaultCollectivesSurfaceRankDown(t *testing.T) {
	w := NewWorld(4)
	defer w.Close()
	w.Crash(2)

	errs := make(chan error, 3)
	for _, r := range []int{0, 1, 3} {
		go func(rank int) {
			c := w.MustComm(rank)
			errs <- c.Barrier()
		}(r)
	}
	for i := 0; i < 3; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrRankDown) {
				t.Fatalf("barrier with dead member: %v, want ErrRankDown", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("barrier deadlocked on dead member")
		}
	}
}

// The TCP transport detects a silent peer via the Recv deadline and fails
// fast afterwards.
func TestFaultTCPRankDownDetection(t *testing.T) {
	w0, err := NewTCPWorld(0, []string{"127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer w0.Close()
	w1, err := NewTCPWorld(1, []string{"127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{w0.Addr(), w1.Addr()}
	w0.SetAddrs(addrs)
	w1.SetAddrs(addrs)
	w0.SetDetectTimeout(60 * time.Millisecond)

	c0, err := w0.Comm()
	if err != nil {
		t.Fatal(err)
	}
	c1, err := w1.Comm()
	if err != nil {
		t.Fatal(err)
	}

	// Live traffic flows normally under the deadline.
	if err := c1.Send(0, 2, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if got, err := c0.Recv(1, 2); err != nil || string(got) != "alive" {
		t.Fatalf("live recv: %q, %v", got, err)
	}

	// Kill the peer; the next recv times out as a rank failure...
	w1.Close()
	start := time.Now()
	if _, err := c0.Recv(1, 2); !errors.Is(err, ErrRankDown) {
		t.Fatalf("recv from dead tcp peer: %v, want ErrRankDown", err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("detection fired after %v, before the deadline", elapsed)
	}
	// ...and the source is marked down, so the retry fails fast.
	start = time.Now()
	if _, err := c0.Recv(1, 2); !errors.Is(err, ErrRankDown) {
		t.Fatalf("second recv: %v, want ErrRankDown", err)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("marked-down recv took %v, want fast-fail", elapsed)
	}
}
