package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// writeReport lands a workload's JSON report somewhere inspectable: at
// jsonPath when the user passed -json, otherwise at a fresh file in the OS
// temp directory named after tempPattern (os.CreateTemp semantics — the `*`
// becomes a unique suffix). Every workload routes through here so none of
// them silently discards its report or litters the working tree; a fixed
// temp path would collide across users on a shared machine, hence the
// per-run unique name.
func writeReport(jsonPath, tempPattern string, report any) error {
	if jsonPath == "" {
		f, err := os.CreateTemp("", tempPattern)
		if err != nil {
			return err
		}
		jsonPath = f.Name()
		f.Close()
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", jsonPath)
	return nil
}
