package simevent

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/compress"
	"repro/internal/mpi"
	"repro/internal/simnet"
)

// simConfig is the shared fixture: a profiled 4×4 world with fabric
// accounting, nonzero host overhead, and jitter — every source of timing
// variation enabled, so determinism is tested under the hardest config.
func simFixture(t *testing.T, seed uint64) ([]Result, Config) {
	t.Helper()
	fabric := simnet.MinskyFabric(4)
	intra, inter, err := fabric.LinkProfiles(1)
	if err != nil {
		t.Fatal(err)
	}
	topo := mpi.UniformTopology(16, 4)
	cfg := Config{
		Topo: topo, Intra: intra, Inter: inter,
		HostOverhead: 3 * time.Microsecond, JitterFrac: 0.5, Seed: seed,
		Fabric: fabric, Record: true,
	}
	var results []Result
	for _, col := range Collectives() {
		scheds, err := BuildSchedule(Spec{
			Collective: col, Topo: topo, Elems: 4000, BucketFloats: 512,
			Codec: compress.TopK{Ratio: 0.1},
		})
		if err != nil {
			t.Fatalf("%s: %v", col, err)
		}
		res, err := Run(scheds, cfg)
		if err != nil {
			t.Fatalf("%s: %v", col, err)
		}
		results = append(results, *res)
	}
	return results, cfg
}

// TestSameSeedByteIdenticalTraces is the determinism property: two runs
// with the same seed produce byte-identical event traces and reports.
func TestSameSeedByteIdenticalTraces(t *testing.T) {
	a, _ := simFixture(t, 42)
	b, _ := simFixture(t, 42)
	for i := range a {
		ja, err := json.Marshal(a[i])
		if err != nil {
			t.Fatal(err)
		}
		jb, err := json.Marshal(b[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ja, jb) {
			t.Fatalf("collective %d: same-seed reports differ:\n%s\nvs\n%s", i, ja, jb)
		}
		if a[i].TraceHash != b[i].TraceHash {
			t.Fatalf("collective %d: same-seed trace hashes differ: %x vs %x", i, a[i].TraceHash, b[i].TraceHash)
		}
		if len(a[i].Trace) == 0 {
			t.Fatalf("collective %d: Record produced an empty trace", i)
		}
	}
}

// TestDifferentSeedsVaryOnlyJitter: a different seed may move event times
// (jitter) but never byte totals, message counts, or per-rank byte splits.
func TestDifferentSeedsVaryOnlyJitter(t *testing.T) {
	a, _ := simFixture(t, 1)
	b, _ := simFixture(t, 2)
	jittered := false
	for i := range a {
		if a[i].Traffic != b[i].Traffic {
			t.Fatalf("collective %d: traffic varies with seed: %+v vs %+v", i, a[i].Traffic, b[i].Traffic)
		}
		if a[i].Messages != b[i].Messages {
			t.Fatalf("collective %d: message count varies with seed: %d vs %d", i, a[i].Messages, b[i].Messages)
		}
		for r := range a[i].PerRank {
			if a[i].PerRank[r].SentBytes != b[i].PerRank[r].SentBytes ||
				a[i].PerRank[r].RecvBytes != b[i].PerRank[r].RecvBytes {
				t.Fatalf("collective %d rank %d: byte split varies with seed", i, r)
			}
		}
		// Jitter may reorder the global event interleaving, but the set of
		// executed operations is schedule-determined: same count, and the
		// same multiset of (kind, rank, peer, tag, bytes) tuples.
		if len(a[i].Trace) != len(b[i].Trace) {
			t.Fatalf("collective %d: trace length varies with seed: %d vs %d", i, len(a[i].Trace), len(b[i].Trace))
		}
		ops := make(map[TraceEvent]int)
		for _, ev := range a[i].Trace {
			ev.At = 0
			ops[ev]++
		}
		for _, ev := range b[i].Trace {
			ev.At = 0
			ops[ev]--
		}
		for ev, n := range ops {
			if n != 0 {
				t.Fatalf("collective %d: op multiset varies with seed at %+v (count diff %d)", i, ev, n)
			}
		}
		if a[i].TraceHash != b[i].TraceHash {
			jittered = true
		}
	}
	if !jittered {
		t.Fatal("different seeds produced identical traces everywhere — jitter is not being applied")
	}
}
