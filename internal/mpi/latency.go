package mpi

import (
	"sync"
	"time"
)

// LinkProfile models a network link for the in-process transport: each
// message pays Latency plus len/BytesPerSec of wall time before delivery.
// The zero value means instantaneous (plain shared-memory behaviour).
type LinkProfile struct {
	// Latency is the per-message fixed cost.
	Latency time.Duration
	// BytesPerSec is the serialization bandwidth; 0 disables the size term.
	BytesPerSec float64
}

// Delay returns the wall time a message of n bytes occupies the link.
func (p LinkProfile) Delay(n int) time.Duration {
	d := p.Latency
	if p.BytesPerSec > 0 {
		d += time.Duration(float64(n) / p.BytesPerSec * float64(time.Second))
	}
	return d
}

// NewLatencyWorld creates an in-process world whose sends pay the link
// profile's delay before the message is enqueued at the destination. Each
// rank's outbound messages serialize through one egress link (one NIC per
// node), so total communication time scales with the bytes a rank emits —
// compression shortens it, and only genuinely concurrent compute can hide
// it. Blocking Send occupies the caller for the delay, exactly like a real
// wire; non-blocking Isend pays it on the request's goroutine. Experiments
// that need a comm-heavy configuration (the overlap benchmark) use this to
// make inter-node traffic cost honest wall time instead of a free memcpy.
func NewLatencyWorld(n int, link LinkProfile) *World {
	w := NewWorld(n)
	w.link = link
	return w
}

// latencyTransport wraps another transport, charging every send the link
// delay under a per-rank egress lock.
type latencyTransport struct {
	Transport
	link LinkProfile
	mu   sync.Mutex // serializes this rank's egress
}

// charge occupies this rank's egress link for the wall time an n-byte
// message takes — the single place the link model is applied, so copying and
// ownership-transfer sends always pay identical cost.
func (t *latencyTransport) charge(n int) {
	if d := t.link.Delay(n); d > 0 {
		t.mu.Lock()
		time.Sleep(d)
		t.mu.Unlock()
	}
}

// Send implements Transport.
func (t *latencyTransport) Send(dst int, ctx uint64, tag int, data []byte) error {
	t.charge(len(data))
	return t.Transport.Send(dst, ctx, tag, data)
}

// SendOwned implements Transport, charging the same egress delay as Send.
// (Without this override the embedded transport's zero-delay SendOwned would
// leak through and make pooled sends free.)
func (t *latencyTransport) SendOwned(dst int, ctx uint64, tag int, data []byte) error {
	t.charge(len(data))
	return t.Transport.SendOwned(dst, ctx, tag, data)
}

// sendNeverBlocks overrides the embedded transport's promotion: a latency
// send occupies the caller for the link delay, so Isend must stay async.
func (t *latencyTransport) sendNeverBlocks() bool { return false }
