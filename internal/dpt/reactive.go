package dpt

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// This file is the engine's reactive face: instead of the full-step barrier
// (Step, then SumGrads over the whole flattened vector), the step emits
// per-device gradient readiness incrementally and reduces/scatters arbitrary
// sub-ranges of the flattened gradient, so the training loop can pack
// buckets and launch inter-node communication while backward is still
// running on the devices.

// GradHook is invoked from a device's worker goroutine as each parameter's
// gradient becomes final during StepWithGradHook. dev is the device index,
// param the parameter's index (the order of Params; identical on every
// device). Implementations must be fast and must synchronize their own
// state: hooks from different devices run concurrently.
type GradHook func(dev, param int)

// NumParams returns the number of parameters per replica.
func (e *Engine) NumParams() int { return len(e.offsets) }

// ParamRange returns parameter i's [lo, hi) range in the flattened gradient.
func (e *Engine) ParamRange(i int) (lo, hi int) {
	lo = e.offsets[i]
	if i+1 < len(e.offsets) {
		return lo, e.offsets[i+1]
	}
	return lo, e.gradSize
}

// StepWithGradHook is Step in optimized scheduling with incremental
// gradient readiness: forward, criterion and backward all run on the
// devices, and hook fires per (device, parameter) as soon as that replica's
// gradient for the parameter is final — while earlier layers are still
// computing backward. It returns after every device finishes, like Step; by
// then hook has fired exactly NumDevices×NumParams times.
//
// The model replicas should implement nn.GradNotifier for real overlap;
// plain layers degrade to whole-model notification after backward.
func (e *Engine) StepWithGradHook(x *tensor.Tensor, labels []int, hook GradHook) (float64, error) {
	if e.closed {
		return 0, errors.New("dpt: engine closed")
	}
	if !e.optimized {
		return 0, errors.New("dpt: StepWithGradHook requires the optimized engine (baseline scheduling serializes backward)")
	}
	n := x.Dim(0)
	if len(labels) != n {
		return 0, fmt.Errorf("dpt: %d labels for batch %d", len(labels), n)
	}
	if n < len(e.devices) {
		return 0, fmt.Errorf("dpt: batch %d smaller than device count %d", n, len(e.devices))
	}
	sizes := e.partition(n)
	rowLen := x.Len() / n
	off := 0
	for i, d := range e.devices {
		d := d // job closures must bind this iteration's device, not the shared range variable
		lo, hi := off, off+sizes[i]
		off = hi
		d.partN = hi - lo
		notifyAll := func() {
			for p := range d.params {
				hook(d.id, p)
			}
		}
		if d.partN == 0 {
			// Empty row shard: zeroed gradients still contribute to the
			// intra-node sum, so readiness is immediate for every param.
			d.submit(func() {
				nn.ZeroGrads(d.params)
				notifyAll()
			})
			continue
		}
		part := x.MustSliceRows(lo, hi)
		lbl := labels[lo:hi]
		d.submit(func() {
			d.stageInput(part)
			d.labelBuf = append(d.labelBuf[:0], lbl...)
			nn.ZeroGrads(d.params)
			out := d.model.Forward(d.input, true)
			loss, err := d.crit.Forward(out, d.labelBuf)
			if err != nil {
				// The step is failing; readiness must still complete so a
				// pipelined caller can drain instead of deadlocking.
				d.loss = -1
				nn.ZeroGrads(d.params)
				notifyAll()
				return
			}
			d.loss = loss
			idx := e.paramIdx[d.id]
			nn.BackwardNotify(d.model, d.crit.Backward(), func(p *nn.Param) {
				hook(d.id, idx[p])
			})
		})
		e.mu.Lock()
		e.stats.BytesMoved += int64(4 * sizes[i] * rowLen)
		e.mu.Unlock()
	}
	// Join ALL devices before inspecting losses: the caller may tear down
	// its readiness plumbing the moment this returns an error, so no device
	// goroutine may still be firing hooks.
	for _, d := range e.devices {
		d.done.Wait()
		e.mu.Lock()
		e.stats.Serializations++
		e.mu.Unlock()
	}
	var loss float64
	for _, d := range e.devices {
		if d.partN == 0 {
			continue
		}
		if d.loss < 0 {
			return 0, errors.New("dpt: criterion failed on device")
		}
		loss += d.loss * float64(d.partN)
	}
	e.mu.Lock()
	e.stats.Steps++
	e.mu.Unlock()
	return loss / float64(n), nil
}

// paramsOverlapping returns the index range [first, last) of parameters
// whose flattened extent intersects [lo, hi).
func (e *Engine) paramsOverlapping(lo, hi int) (first, last int) {
	// First param whose end is beyond lo.
	first = sort.Search(len(e.offsets), func(i int) bool {
		_, end := e.ParamRange(i)
		return end > lo
	})
	last = sort.Search(len(e.offsets), func(i int) bool {
		return e.offsets[i] >= hi
	})
	return first, last
}

// ReduceRangeInto sums the devices' gradients over the flattened range
// [lo, hi) into dst (length hi-lo), device 0 first then adding device 1, 2,
// … — element-for-element the same arithmetic order as SumGrads, so a
// bucket-by-bucket reduction is bitwise identical to the full-vector one.
// The caller must guarantee every overlapping parameter's gradient is final
// on every device (readiness established through StepWithGradHook).
func (e *Engine) ReduceRangeInto(dst []float32, lo, hi int) error {
	if hi < lo || lo < 0 || hi > e.gradSize {
		return fmt.Errorf("dpt: ReduceRangeInto range [%d,%d) outside gradient [0,%d)", lo, hi, e.gradSize)
	}
	if len(dst) != hi-lo {
		return fmt.Errorf("dpt: ReduceRangeInto dst %d, want %d", len(dst), hi-lo)
	}
	first, last := e.paramsOverlapping(lo, hi)
	for di, d := range e.devices {
		for i := first; i < last; i++ {
			pLo, pHi := e.ParamRange(i)
			s, t := max(pLo, lo), min(pHi, hi)
			g := d.params[i].Grad.Data[s-pLo : t-pLo]
			out := dst[s-lo : t-lo]
			if di == 0 {
				copy(out, g)
			} else {
				for j, v := range g {
					out[j] += v
				}
			}
		}
	}
	return nil
}

// ScatterRange writes src (length hi-lo) into every device's gradient
// accumulators over the flattened range [lo, hi) — the per-bucket form of
// SetGrads' intra-node broadcast.
func (e *Engine) ScatterRange(lo, hi int, src []float32) error {
	if err := e.checkRange("ScatterRange", lo, hi, len(src)); err != nil {
		return err
	}
	first, last := e.paramsOverlapping(lo, hi)
	for dev := range e.devices {
		e.scatterRangeDev(dev, lo, hi, src, first, last)
	}
	return nil
}

// ScatterRangeDev is ScatterRange restricted to one device — the sharded
// optimizer's form: only the device whose replica the shard optimizer reads
// needs the reduced gradient, the others receive updated *weights* via
// SetValues after the parameter allgather.
func (e *Engine) ScatterRangeDev(dev, lo, hi int, src []float32) error {
	if dev < 0 || dev >= len(e.devices) {
		return fmt.Errorf("dpt: ScatterRangeDev device %d of %d", dev, len(e.devices))
	}
	if err := e.checkRange("ScatterRangeDev", lo, hi, len(src)); err != nil {
		return err
	}
	first, last := e.paramsOverlapping(lo, hi)
	e.scatterRangeDev(dev, lo, hi, src, first, last)
	return nil
}

// scatterRangeDev copies src into device dev's gradient accumulators over
// [lo, hi); bounds and src length are already validated.
func (e *Engine) scatterRangeDev(dev, lo, hi int, src []float32, first, last int) {
	d := e.devices[dev]
	for i := first; i < last; i++ {
		pLo, pHi := e.ParamRange(i)
		s, t := max(pLo, lo), min(pHi, hi)
		copy(d.params[i].Grad.Data[s-pLo:t-pLo], src[s-lo:t-lo])
	}
}

// FlattenValuesRange copies device dev's parameter VALUES over the flattened
// range [lo, hi) into dst (length hi-lo) — how the sharded path assembles
// its updated shard for the parameter allgather.
func (e *Engine) FlattenValuesRange(dev, lo, hi int, dst []float32) error {
	if dev < 0 || dev >= len(e.devices) {
		return fmt.Errorf("dpt: FlattenValuesRange device %d of %d", dev, len(e.devices))
	}
	if err := e.checkRange("FlattenValuesRange", lo, hi, len(dst)); err != nil {
		return err
	}
	d := e.devices[dev]
	first, last := e.paramsOverlapping(lo, hi)
	for i := first; i < last; i++ {
		pLo, pHi := e.ParamRange(i)
		s, t := max(pLo, lo), min(pHi, hi)
		copy(dst[s-lo:t-lo], d.params[i].Value.Data[s-pLo:t-pLo])
	}
	return nil
}

// SetValues writes a full flattened weight vector into every device's
// parameters — the intra-node broadcast of allgathered parameters in the
// sharded update (the weight analogue of SetGrads).
func (e *Engine) SetValues(flat []float32) error {
	for _, d := range e.devices {
		if err := nn.UnflattenValues(d.params, flat); err != nil {
			return err
		}
	}
	return nil
}

// checkRange validates a flattened sub-range and its buffer length.
func (e *Engine) checkRange(op string, lo, hi, bufLen int) error {
	if hi < lo || lo < 0 || hi > e.gradSize {
		return fmt.Errorf("dpt: %s range [%d,%d) outside gradient [0,%d)", op, lo, hi, e.gradSize)
	}
	if bufLen != hi-lo {
		return fmt.Errorf("dpt: %s buffer %d, want %d", op, bufLen, hi-lo)
	}
	return nil
}
