package sgd

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// testParams builds a small synthetic parameter list with mixed sizes and a
// NoWeightDecay entry, with deterministic weights and gradients.
func testParams(seed int64) []*nn.Param {
	rng := tensor.NewRNG(seed)
	sizes := []int{7, 32, 5, 19, 3}
	var ps []*nn.Param
	for i, n := range sizes {
		p := &nn.Param{Value: tensor.New(n), Grad: tensor.New(n)}
		rng.FillNormal(p.Value, 0, 1)
		rng.FillNormal(p.Grad, 0, 1)
		if i == 2 {
			p.NoWeightDecay = true
		}
		ps = append(ps, p)
	}
	return ps
}

func totalLen(ps []*nn.Param) int { return nn.ParamCount(ps) }

// A union of shard optimizers stepping disjoint ranges must reproduce the
// full replicated update bit for bit — the ZeRO-1 correctness statement at
// the optimizer level.
func TestSGDShardUnionMatchesFullBitwise(t *testing.T) {
	full := testParams(1)
	sharded := testParams(1)
	fullOpt := New(full, DefaultConfig())
	cuts := []int{0, 2, 2, 4, 5} // includes an empty shard
	var shards []*SGD
	for r := 0; r+1 < len(cuts); r++ {
		shards = append(shards, NewShard(sharded, DefaultConfig(), cuts[r], cuts[r+1]))
	}
	for step := 0; step < 3; step++ {
		fullOpt.Step(0.05)
		for _, s := range shards {
			s.Step(0.05)
		}
	}
	for i := range full {
		for j := range full[i].Value.Data {
			if full[i].Value.Data[j] != sharded[i].Value.Data[j] {
				t.Fatalf("param %d elem %d: full %v, shard union %v", i, j, full[i].Value.Data[j], sharded[i].Value.Data[j])
			}
		}
	}
}

func TestLARSShardUnionMatchesFullBitwise(t *testing.T) {
	full := testParams(2)
	sharded := testParams(2)
	fullOpt := NewLARS(full, DefaultConfig(), 0.01)
	var shards []*LARS
	cuts := []int{0, 1, 3, 5}
	for r := 0; r+1 < len(cuts); r++ {
		shards = append(shards, NewLARSShard(sharded, DefaultConfig(), 0.01, cuts[r], cuts[r+1]))
	}
	for step := 0; step < 3; step++ {
		fullOpt.Step(0.1)
		for _, s := range shards {
			s.Step(0.1)
		}
	}
	for i := range full {
		for j := range full[i].Value.Data {
			if full[i].Value.Data[j] != sharded[i].Value.Data[j] {
				t.Fatalf("param %d elem %d diverges", i, j)
			}
		}
	}
}

// StepParam outside the shard must be a no-op (the reactive collector counts
// down every param and relies on the optimizer enforcing ownership).
func TestSGDShardStepParamOutsideIsNoOp(t *testing.T) {
	ps := testParams(3)
	o := NewShard(ps, DefaultConfig(), 1, 3)
	if o.Owns(0) || !o.Owns(1) || !o.Owns(2) || o.Owns(3) {
		lo, hi := o.ShardRange()
		t.Fatalf("ownership wrong for shard [%d,%d)", lo, hi)
	}
	before := append([]float32(nil), ps[0].Value.Data...)
	o.StepParam(0, 0.1)
	o.StepParam(4, 0.1)
	for j, v := range ps[0].Value.Data {
		if v != before[j] {
			t.Fatal("StepParam outside shard mutated the parameter")
		}
	}
}

// Shard state accounting: StateLen/StateBounds/FullStateLen describe exactly
// the owned params' contiguous element range, and export/import round-trip.
func TestShardStateBoundsAndRoundTrip(t *testing.T) {
	ps := testParams(4)
	total := totalLen(ps)
	o := NewShard(ps, DefaultConfig(), 1, 3)
	wantLo := ps[0].Value.Len()
	wantHi := wantLo + ps[1].Value.Len() + ps[2].Value.Len()
	if lo, hi := o.StateBounds(); lo != wantLo || hi != wantHi {
		t.Fatalf("StateBounds [%d,%d), want [%d,%d)", lo, hi, wantLo, wantHi)
	}
	if o.StateLen() != wantHi-wantLo {
		t.Fatalf("StateLen %d, want %d", o.StateLen(), wantHi-wantLo)
	}
	if o.FullStateLen() != total {
		t.Fatalf("FullStateLen %d, want %d", o.FullStateLen(), total)
	}
	o.Step(0.05) // make momentum non-trivial
	st := make([]float32, o.StateLen())
	if err := o.ExportState(st); err != nil {
		t.Fatal(err)
	}
	o2 := NewShard(testParams(4), DefaultConfig(), 1, 3)
	if err := o2.ImportState(st); err != nil {
		t.Fatal(err)
	}
	st2 := make([]float32, o2.StateLen())
	if err := o2.ExportState(st2); err != nil {
		t.Fatal(err)
	}
	for i := range st {
		if st[i] != st2[i] {
			t.Fatal("shard state does not round-trip")
		}
	}
	if err := o.ExportState(make([]float32, o.StateLen()+1)); err == nil {
		t.Fatal("wrong-size export should error")
	}
	if err := o.ImportState(make([]float32, o.StateLen()-1)); err == nil {
		t.Fatal("wrong-size import should error")
	}
}

// Empty and boundary shards must be well-formed.
func TestShardEdgeCases(t *testing.T) {
	ps := testParams(5)
	total := totalLen(ps)
	for _, tc := range []struct{ lo, hi, sLo, sHi int }{
		{0, 0, 0, 0},
		{5, 5, total, total},
		{2, 2, ps[0].Value.Len() + ps[1].Value.Len(), ps[0].Value.Len() + ps[1].Value.Len()},
		{0, 5, 0, total},
	} {
		o := NewShard(ps, DefaultConfig(), tc.lo, tc.hi)
		if lo, hi := o.StateBounds(); lo != tc.sLo || hi != tc.sHi {
			t.Fatalf("shard [%d,%d): StateBounds [%d,%d), want [%d,%d)", tc.lo, tc.hi, lo, hi, tc.sLo, tc.sHi)
		}
		o.Step(0.1) // must not panic, even with nothing owned
		l := NewLARSShard(ps, DefaultConfig(), 0.01, tc.lo, tc.hi)
		if lo, hi := l.StateBounds(); lo != tc.sLo || hi != tc.sHi {
			t.Fatalf("LARS shard [%d,%d): StateBounds [%d,%d)", tc.lo, tc.hi, lo, hi)
		}
		l.Step(0.1)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range shard should panic")
		}
	}()
	NewShard(ps, DefaultConfig(), 3, 6)
}
