package simevent

import (
	"fmt"
	"math"
	"time"
)

// Calibration is the outcome of fitting the simulator against live runs.
type Calibration struct {
	// HostOverhead is the fitted per-operation host cost (see
	// Config.HostOverhead): the least-squares solution over the calibration
	// cases, clamped non-negative.
	HostOverhead time.Duration `json:"host_overhead_ns"`
	// MAPE is the mean absolute percentage error of predicted vs measured
	// step time across the cases, with the fitted overhead applied.
	MAPE float64 `json:"mape"`
	// BytesExact reports whether every case's simulated per-link-class byte
	// totals equal the live world's Traffic counters exactly.
	BytesExact bool `json:"bytes_exact"`
	// Cases holds the per-case detail.
	Cases []CalibrationCase `json:"cases"`
}

// CalibrationCase is one collective's predicted-vs-measured comparison.
type CalibrationCase struct {
	Collective  string  `json:"collective"`
	Codec       string  `json:"codec"`
	MeasuredMS  float64 `json:"measured_ms"`
	PredictedMS float64 `json:"predicted_ms"`
	// AbsPctErr is |predicted-measured|/measured.
	AbsPctErr float64 `json:"abs_pct_err"`
	// Byte agreement detail: live and simulated per-link-class totals.
	LiveIntraBytes int64 `json:"live_intra_bytes"`
	LiveInterBytes int64 `json:"live_inter_bytes"`
	SimIntraBytes  int64 `json:"sim_intra_bytes"`
	SimInterBytes  int64 `json:"sim_inter_bytes"`
	BytesMatch     bool  `json:"bytes_match"`
}

// Calibrate measures every case live (median of reps fresh-world runs),
// verifies exact byte agreement between simulation and measurement, fits
// the per-operation host overhead, and reports the resulting MAPE.
//
// The fit exploits that predicted makespan is (piecewise) linear in
// HostOverhead: the engine runs each case at overhead 0 and at a fixed
// probe value, the two points give the case's sensitivity (the number of
// host-cost charges on its critical path), and the least-squares overhead
//
//	H = Σᵢ sᵢ·(measuredᵢ − predictedᵢ(0)) / Σᵢ sᵢ²
//
// minimizes the summed squared timing residuals across cases. One scalar
// fitted from N measurements — the calibration cannot overfit per-case,
// so a passing MAPE means the link model itself explains the measurements.
func Calibrate(cases []LiveCase, reps int) (*Calibration, error) {
	if len(cases) == 0 {
		return nil, fmt.Errorf("simevent: no calibration cases")
	}
	const probe = 50 * time.Microsecond
	cal := &Calibration{BytesExact: true}
	pred0 := make([]float64, len(cases)) // zero-overhead prediction, seconds
	slope := make([]float64, len(cases)) // d(makespan)/d(overhead), unitless
	meas := make([]float64, len(cases))  // measured, seconds

	for i, lc := range cases {
		spec, err := lc.Spec()
		if err != nil {
			return nil, err
		}
		scheds, err := BuildSchedule(spec)
		if err != nil {
			return nil, err
		}
		cfg := Config{Topo: spec.Topo, Intra: lc.Intra, Inter: lc.Inter}
		r0, err := Run(scheds, cfg)
		if err != nil {
			return nil, err
		}
		cfg.HostOverhead = probe
		r1, err := Run(scheds, cfg)
		if err != nil {
			return nil, err
		}
		pred0[i] = r0.Makespan.Seconds()
		slope[i] = float64(r1.Makespan-r0.Makespan) / float64(probe)

		live, err := MeasureLive(lc, reps)
		if err != nil {
			return nil, err
		}
		meas[i] = live.Wall.Seconds()

		cc := CalibrationCase{
			Collective:     string(lc.Collective),
			Codec:          lc.Codec.Codec,
			MeasuredMS:     1e3 * meas[i],
			LiveIntraBytes: live.Traffic.IntraBytes,
			LiveInterBytes: live.Traffic.InterBytes,
			SimIntraBytes:  r0.Traffic.IntraBytes,
			SimInterBytes:  r0.Traffic.InterBytes,
			BytesMatch:     live.Traffic == r0.Traffic,
		}
		if !cc.BytesMatch {
			cal.BytesExact = false
		}
		cal.Cases = append(cal.Cases, cc)
	}

	// slope is dimensionless (seconds of makespan per second of overhead),
	// so the least-squares solution lands directly in seconds.
	var num, den float64
	for i := range cases {
		num += slope[i] * (meas[i] - pred0[i])
		den += slope[i] * slope[i]
	}
	overhead := 0.0
	if den > 0 {
		overhead = num / den
	}
	if overhead < 0 {
		overhead = 0
	}
	cal.HostOverhead = time.Duration(overhead * float64(time.Second))

	var sum float64
	for i, lc := range cases {
		spec, err := lc.Spec()
		if err != nil {
			return nil, err
		}
		scheds, err := BuildSchedule(spec)
		if err != nil {
			return nil, err
		}
		r, err := Run(scheds, Config{Topo: spec.Topo, Intra: lc.Intra, Inter: lc.Inter, HostOverhead: cal.HostOverhead})
		if err != nil {
			return nil, err
		}
		p := r.Makespan.Seconds()
		e := math.Abs(p-meas[i]) / meas[i]
		cal.Cases[i].PredictedMS = 1e3 * p
		cal.Cases[i].AbsPctErr = e
		sum += e
	}
	cal.MAPE = sum / float64(len(cases))
	return cal, nil
}
