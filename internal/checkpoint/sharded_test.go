package checkpoint

import (
	"bytes"
	"testing"

	"repro/internal/models"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/sgd"
	"repro/internal/tensor"
)

// paramShardCuts splits the params into n contiguous, roughly element-
// balanced shards (the same policy core uses), as param-index bounds.
func paramShardCuts(params []*nn.Param, n int) []int {
	total := nn.ParamCount(params)
	cuts := make([]int, n+1)
	p, off := 0, 0
	for r := 1; r <= n; r++ {
		target := r * total / n
		for p < len(params) && off < target {
			off += params[p].Value.Len()
			p++
		}
		cuts[r] = p
	}
	cuts[n] = len(params)
	return cuts
}

// fillGrads writes the same deterministic gradient into every replica.
func fillGrads(params []*nn.Param) {
	rng := tensor.NewRNG(99)
	for _, p := range params {
		rng.FillNormal(p.Grad, 0, 1)
	}
}

// Sharded save → replicated load: a sharded world's CaptureSharded must
// produce the byte-identical file a replicated run writes, and loading it
// replicated must continue the exact trajectory.
func TestShardedSaveReplicatedLoadSGD(t *testing.T) {
	const ranks = 3
	// Replicated reference run.
	ref := models.NewSmallCNN(3, 8, tensor.NewRNG(1))
	refOpt := sgd.New(ref.Params(), sgd.DefaultConfig())
	fillGrads(ref.Params())
	refOpt.Step(0.05)
	refOpt.Step(0.05)

	// Sharded run with identical arithmetic: each rank holds a replica
	// seeded identically and steps only its shard; weights stay in sync
	// because updates are disjoint and deterministic.
	reps := make([]*nn.Sequential, ranks)
	opts := make([]*sgd.SGD, ranks)
	for r := 0; r < ranks; r++ {
		reps[r] = models.NewSmallCNN(3, 8, tensor.NewRNG(1))
		cuts := paramShardCuts(reps[r].Params(), ranks)
		opts[r] = sgd.NewShard(reps[r].Params(), sgd.DefaultConfig(), cuts[r], cuts[r+1])
		fillGrads(reps[r].Params())
	}
	for step := 0; step < 2; step++ {
		for r := 0; r < ranks; r++ {
			opts[r].Step(0.05)
		}
		// Sync shards across replicas (the learner's param allgather).
		for r := 0; r < ranks; r++ {
			cuts := paramShardCuts(reps[r].Params(), ranks)
			for i := cuts[r]; i < cuts[r+1]; i++ {
				for o := 0; o < ranks; o++ {
					if o != r {
						copy(reps[o].Params()[i].Value.Data, reps[r].Params()[i].Value.Data)
					}
				}
			}
		}
	}

	// Sharded save: gather the shards over a real communicator.
	var ck *Checkpoint
	w := mpi.NewWorld(ranks)
	defer w.Close()
	err := w.Run(func(c *mpi.Comm) error {
		got, err := CaptureSharded(c, reps[c.Rank()].Params(), opts[c.Rank()], 2, 0.5)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			ck = got
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// The gathered checkpoint must be byte-identical to the replicated one.
	refCk, err := Capture(ref.Params(), refOpt, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if _, err := ck.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := refCk.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("sharded save is not byte-identical to the replicated save — checkpoint is not rank-count independent")
	}

	// Replicated load of the sharded save: one more identical step must
	// reproduce the reference trajectory exactly.
	got, err := Read(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	net2 := models.NewSmallCNN(3, 8, tensor.NewRNG(7))
	opt2 := sgd.New(net2.Params(), sgd.DefaultConfig())
	if err := got.Restore(net2.Params(), opt2); err != nil {
		t.Fatal(err)
	}
	fillGrads(net2.Params())
	refOpt.Step(0.05)
	opt2.Step(0.05)
	for i, p := range ref.Params() {
		for j := range p.Value.Data {
			if p.Value.Data[j] != net2.Params()[i].Value.Data[j] {
				t.Fatalf("param %d elem %d diverges after replicated load of sharded save", i, j)
			}
		}
	}
}

// Replicated save → sharded load (any world size): each rank imports only
// its StateBounds slice, and a subsequent sharded update matches the
// replicated trajectory bit for bit on every shard.
func TestReplicatedSaveShardedLoad(t *testing.T) {
	net, _ := trainedModel(t, 30)
	opt := sgd.New(net.Params(), sgd.DefaultConfig())
	// Accumulate momentum, snapshot, then take a reference step.
	fillGrads(net.Params())
	opt.Step(0.05)
	ck, err := Capture(net.Params(), opt, 9, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ck.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	fillGrads(net.Params())
	opt.Step(0.05)

	for _, ranks := range []int{2, 4} {
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		reps := make([]*nn.Sequential, ranks)
		for r := 0; r < ranks; r++ {
			reps[r] = models.NewSmallCNN(3, 8, tensor.NewRNG(50+int64(r)))
			cuts := paramShardCuts(reps[r].Params(), ranks)
			so := sgd.NewShard(reps[r].Params(), sgd.DefaultConfig(), cuts[r], cuts[r+1])
			if err := got.Restore(reps[r].Params(), so); err != nil {
				t.Fatal(err)
			}
			fillGrads(reps[r].Params())
			so.Step(0.05)
			for i := cuts[r]; i < cuts[r+1]; i++ {
				for j := range reps[r].Params()[i].Value.Data {
					if reps[r].Params()[i].Value.Data[j] != net.Params()[i].Value.Data[j] {
						t.Fatalf("ranks=%d rank=%d param %d elem %d: sharded load diverges from replicated trajectory",
							ranks, r, i, j)
					}
				}
			}
		}
	}
}

// LARS state must survive the disk round trip (serialization, not just
// Capture/Restore) and the sharded gather, producing identical next updates.
func TestLARSCheckpointDiskRoundTripAndSharded(t *testing.T) {
	rng := tensor.NewRNG(40)
	net := models.NewSmallCNN(3, 8, rng)
	lars := sgd.NewLARS(net.Params(), sgd.DefaultConfig(), 0.01)
	fillGrads(net.Params())
	lars.Step(0.1)
	ck, err := Capture(net.Params(), lars, 11, 2.25)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ck.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 11 || got.Epoch != 2.25 {
		t.Fatalf("counters %d/%v after disk round trip", got.Step, got.Epoch)
	}

	// Replicated restore.
	net2 := models.NewSmallCNN(3, 8, tensor.NewRNG(41))
	lars2 := sgd.NewLARS(net2.Params(), sgd.DefaultConfig(), 0.01)
	if err := got.Restore(net2.Params(), lars2); err != nil {
		t.Fatal(err)
	}
	// Sharded restore of the same file.
	const ranks = 2
	nets := make([]*nn.Sequential, ranks)
	shards := make([]*sgd.LARS, ranks)
	for r := 0; r < ranks; r++ {
		nets[r] = models.NewSmallCNN(3, 8, tensor.NewRNG(42+int64(r)))
		cuts := paramShardCuts(nets[r].Params(), ranks)
		shards[r] = sgd.NewLARSShard(nets[r].Params(), sgd.DefaultConfig(), 0.01, cuts[r], cuts[r+1])
		if err := got.Restore(nets[r].Params(), shards[r]); err != nil {
			t.Fatal(err)
		}
	}
	// Identical next update across all three restores.
	fillGrads(net.Params())
	fillGrads(net2.Params())
	lars.Step(0.1)
	lars2.Step(0.1)
	for r := 0; r < ranks; r++ {
		fillGrads(nets[r].Params())
		shards[r].Step(0.1)
	}
	for i, p := range net.Params() {
		for j := range p.Value.Data {
			if p.Value.Data[j] != net2.Params()[i].Value.Data[j] {
				t.Fatal("replicated LARS restore diverges")
			}
		}
	}
	for r := 0; r < ranks; r++ {
		cuts := paramShardCuts(nets[r].Params(), ranks)
		for i := cuts[r]; i < cuts[r+1]; i++ {
			for j := range net.Params()[i].Value.Data {
				if nets[r].Params()[i].Value.Data[j] != net.Params()[i].Value.Data[j] {
					t.Fatalf("sharded LARS restore diverges at rank %d param %d", r, i)
				}
			}
		}
	}

	// Gather a sharded LARS save over a communicator and compare bytes.
	var shardedCk *Checkpoint
	w := mpi.NewWorld(ranks)
	defer w.Close()
	err = w.Run(func(c *mpi.Comm) error {
		ckr, err := CaptureSharded(c, nets[c.Rank()].Params(), shards[c.Rank()], 12, 2.5)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			shardedCk = ckr
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	refCk, err := Capture(net.Params(), lars, 12, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	// Weights differ across nets (only shards are synced), so compare just
	// the gathered optimizer state against the replicated export.
	if len(shardedCk.optState) != len(refCk.optState) {
		t.Fatalf("gathered LARS state %d elems, replicated %d", len(shardedCk.optState), len(refCk.optState))
	}
	for i := range refCk.optState {
		if shardedCk.optState[i] != refCk.optState[i] {
			t.Fatalf("gathered LARS state diverges at %d", i)
		}
	}
}

// A partial shard must be refused by plain Capture, and a sharded restore
// must refuse a checkpoint whose state is not the full model's.
func TestShardedCaptureRestoreGuards(t *testing.T) {
	net, _ := trainedModel(t, 60)
	cuts := paramShardCuts(net.Params(), 2)
	so := sgd.NewShard(net.Params(), sgd.DefaultConfig(), cuts[0], cuts[1])
	if _, err := Capture(net.Params(), so, 0, 0); err == nil {
		t.Fatal("Capture of a partial shard must error (use CaptureSharded)")
	}
	full := sgd.New(net.Params(), sgd.DefaultConfig())
	ck, err := Capture(net.Params(), full, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ck.optState = ck.optState[:len(ck.optState)-1]
	if err := ck.Restore(net.Params(), so); err == nil {
		t.Fatal("sharded restore of a truncated state must error")
	}
}

// CaptureSharded with a replicated-form optimizer (shard == full state) must
// degrade to a plain Capture on a multi-rank communicator instead of
// gathering world-size full replicas.
func TestCaptureShardedFullShard(t *testing.T) {
	const ranks = 3
	nets := make([]*nn.Sequential, ranks)
	opts := make([]*sgd.SGD, ranks)
	for r := 0; r < ranks; r++ {
		nets[r] = models.NewSmallCNN(3, 8, tensor.NewRNG(70))
		opts[r] = sgd.New(nets[r].Params(), sgd.DefaultConfig())
		fillGrads(nets[r].Params())
		opts[r].Step(0.05)
	}
	var ck *Checkpoint
	w := mpi.NewWorld(ranks)
	defer w.Close()
	err := w.Run(func(c *mpi.Comm) error {
		got, err := CaptureSharded(c, nets[c.Rank()].Params(), opts[c.Rank()], 1, 0.5)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			ck = got
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.optState) != opts[0].FullStateLen() {
		t.Fatalf("full-shard CaptureSharded gathered %d state elements, want %d", len(ck.optState), opts[0].FullStateLen())
	}
}
