package async

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/sgd"
	"repro/internal/tensor"
)

func runEASGD(t *testing.T, workers, steps, period int, alpha float32) (EASGDResult, *tensor.Tensor, []int) {
	t.Helper()
	const classes, size = 3, 8
	dataX, dataLabels := core.SyntheticTensorData(24, classes, size, 19)
	w := mpi.NewWorld(workers + 1)
	defer w.Close()
	var mu sync.Mutex
	var res EASGDResult
	err := w.Run(func(c *mpi.Comm) error {
		replica := asyncTestModel(classes, size, int64(c.Rank())+300)
		var source core.BatchSource
		if c.Rank() > 0 {
			source = &core.SliceSource{X: dataX, Labels: dataLabels, Rank: c.Rank() - 1, Ranks: workers}
		}
		r, err := RunEASGD(c, replica, source, 3, size, size, EASGDConfig{
			StepsPerWorker: steps,
			CommPeriod:     period,
			Alpha:          alpha,
			BatchPerWorker: 8,
			LR:             0.1,
			SGD:            sgd.Config{Momentum: 0},
		})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			res = r
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, dataX, dataLabels
}

func TestEASGDExchangeCount(t *testing.T) {
	res, _, _ := runEASGD(t, 3, 12, 4, 0.3)
	// Each worker exchanges every 4 steps over 12 steps = 3 exchanges.
	if res.Exchanges != 9 {
		t.Fatalf("exchanges = %d, want 9", res.Exchanges)
	}
	if len(res.CenterWeights) == 0 {
		t.Fatal("no center weights")
	}
}

func TestEASGDCenterLearns(t *testing.T) {
	res, dataX, dataLabels := runEASGD(t, 2, 60, 5, 0.4)
	eval := asyncTestModel(3, 8, 888)
	if err := nn.UnflattenValues(eval.Params(), res.CenterWeights); err != nil {
		t.Fatal(err)
	}
	out := eval.Forward(dataX, false)
	if acc := nn.Accuracy(out, dataLabels); acc < 0.7 {
		t.Fatalf("EASGD center reached only %.2f accuracy", acc)
	}
}

func TestEASGDCommunicatesLessThanPS(t *testing.T) {
	// With CommPeriod 5, EASGD exchanges 1/5 of the parameter-server
	// protocol's messages for the same local step count.
	res, _, _ := runEASGD(t, 2, 20, 5, 0.3)
	psUpdates := 2 * 20 // parameter server applies every gradient
	if res.Exchanges*5 != psUpdates {
		t.Fatalf("exchanges = %d, want %d (1/5 of PS updates)", res.Exchanges, psUpdates/5)
	}
}

func TestEASGDConfigValidation(t *testing.T) {
	w := mpi.NewWorld(2)
	defer w.Close()
	err := w.Run(func(c *mpi.Comm) error {
		m := asyncTestModel(2, 8, 1)
		cases := []EASGDConfig{
			{StepsPerWorker: 0, CommPeriod: 1, Alpha: 0.5, BatchPerWorker: 1},
			{StepsPerWorker: 1, CommPeriod: 0, Alpha: 0.5, BatchPerWorker: 1},
			{StepsPerWorker: 1, CommPeriod: 1, Alpha: 0, BatchPerWorker: 1},
			{StepsPerWorker: 1, CommPeriod: 1, Alpha: 1.5, BatchPerWorker: 1},
		}
		for i, cfg := range cases {
			if _, err := RunEASGD(c, m, nil, 3, 8, 8, cfg); err == nil {
				return fmt.Errorf("case %d should error", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
