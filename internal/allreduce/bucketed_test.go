package allreduce

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/compress"
	"repro/internal/mpi"
)

// rankVec builds rank r's deterministic test vector.
func rankVec(length, r int) []float32 {
	v := make([]float32, length)
	for i := range v {
		v[i] = float32(r+1)*float32(i%13+1)*0.25 - float32(i%7)
	}
	return v
}

func sumVec(length, n int) []float32 {
	want := make([]float32, length)
	for r := 0; r < n; r++ {
		for i, v := range rankVec(length, r) {
			want[i] += v
		}
	}
	return want
}

func runBucketed(t *testing.T, codec compress.Codec, n, length, bucket int, tol float64) {
	t.Helper()
	w := mpi.NewWorld(n)
	defer w.Close()
	want := sumVec(length, n)
	err := w.Run(func(c *mpi.Comm) error {
		data := rankVec(length, c.Rank())
		st, err := BucketedAllReduce(c, data, codec, CompressedOptions{BucketFloats: bucket})
		if err != nil {
			return err
		}
		bf := bucket
		if bf <= 0 {
			bf = 16384
		}
		wantBuckets := (length + bf - 1) / bf
		if st.Buckets != int64(wantBuckets) {
			return fmt.Errorf("rank %d: %d buckets, want %d", c.Rank(), st.Buckets, wantBuckets)
		}
		for i := range data {
			if math.Abs(float64(data[i]-want[i])) > tol {
				return fmt.Errorf("rank %d: data[%d] = %v, want %v", c.Rank(), i, data[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("codec=%s n=%d len=%d bucket=%d: %v", codec.Name(), n, length, bucket, err)
	}
}

func TestBucketedIdentityMatchesSum(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		for _, length := range []int{1, 13, 1000, 50000} {
			for _, bucket := range []int{0, 7, 4096} {
				runBucketed(t, compress.Identity{}, n, length, bucket, 1e-3)
			}
		}
	}
}

// More buckets than the tag span: tags are reused across rounds, relying on
// per-(src,tag) FIFO order; the sum must still be exact.
func TestBucketedTagReuseBeyondSpan(t *testing.T) {
	runBucketed(t, compress.Identity{}, 3, 5000, 4, 1e-3) // 1250 buckets > 1024 tags
}

// Int8 per-bucket error is bounded by max|v|/254 per rank, so the n-rank sum
// errs by at most n·max|v|/254 per element.
func TestBucketedInt8WithinQuantizationBound(t *testing.T) {
	const n, length, bucket = 4, 10000, 1024
	w := mpi.NewWorld(n)
	defer w.Close()
	want := sumVec(length, n)
	err := w.Run(func(c *mpi.Comm) error {
		data := rankVec(length, c.Rank())
		if _, err := BucketedAllReduce(c, data, compress.Int8{}, CompressedOptions{BucketFloats: bucket}); err != nil {
			return err
		}
		// Conservative global bound using the largest magnitude anywhere.
		var maxAbs float64
		for r := 0; r < n; r++ {
			for _, v := range rankVec(length, r) {
				if a := math.Abs(float64(v)); a > maxAbs {
					maxAbs = a
				}
			}
		}
		bound := float64(n)*maxAbs/254 + 1e-6
		for i := range data {
			if err := math.Abs(float64(data[i] - want[i])); err > bound {
				return fmt.Errorf("rank %d: element %d error %v exceeds bound %v", c.Rank(), i, err, bound)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Every rank must land on the bitwise-identical reduced vector, even under a
// lossy codec — the synchronous-SGD replica-sync invariant.
func TestBucketedBitwiseIdenticalAcrossRanks(t *testing.T) {
	for _, codec := range []compress.Codec{compress.Identity{}, compress.Int8{}, compress.TopK{Ratio: 0.1}} {
		const n, length = 4, 3000
		w := mpi.NewWorld(n)
		results := make([][]float32, n)
		err := w.Run(func(c *mpi.Comm) error {
			data := rankVec(length, c.Rank())
			if _, err := BucketedAllReduce(c, data, codec, CompressedOptions{BucketFloats: 256}); err != nil {
				return err
			}
			results[c.Rank()] = data
			return nil
		})
		w.Close()
		if err != nil {
			t.Fatalf("codec=%s: %v", codec.Name(), err)
		}
		for r := 1; r < n; r++ {
			for i := range results[0] {
				if results[r][i] != results[0][i] {
					t.Fatalf("codec=%s: rank %d diverges at element %d: %v vs %v",
						codec.Name(), r, i, results[r][i], results[0][i])
				}
			}
		}
	}
}

// SelfDecoded must equal decode(compress(own data)) — the error-feedback
// contract.
func TestBucketedSelfDecoded(t *testing.T) {
	const n, length, bucket = 3, 2000, 512
	codec := compress.TopK{Ratio: 0.25}
	w := mpi.NewWorld(n)
	defer w.Close()
	err := w.Run(func(c *mpi.Comm) error {
		orig := rankVec(length, c.Rank())
		data := append([]float32(nil), orig...)
		self := make([]float32, length)
		if _, err := BucketedAllReduce(c, data, codec, CompressedOptions{BucketFloats: bucket, SelfDecoded: self}); err != nil {
			return err
		}
		want := make([]float32, length)
		for lo := 0; lo < length; lo += bucket {
			hi := min(lo+bucket, length)
			if err := codec.Decompress(want[lo:hi], compress.Encode(codec, orig[lo:hi])); err != nil {
				return err
			}
		}
		for i := range want {
			if self[i] != want[i] {
				return fmt.Errorf("rank %d: self[%d] = %v, want %v", c.Rank(), i, self[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Length mismatch must be rejected up front.
	w2 := mpi.NewWorld(1)
	defer w2.Close()
	err = w2.Run(func(c *mpi.Comm) error {
		_, err := BucketedAllReduce(c, make([]float32, 8), codec, CompressedOptions{SelfDecoded: make([]float32, 4)})
		if err == nil {
			return fmt.Errorf("SelfDecoded length mismatch should error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The whole point: lossy codecs must move strictly fewer wire bytes than the
// identity codec on the same exchange, and the stats must say so.
func TestBucketedStatsCompressionWins(t *testing.T) {
	const n, length, bucket = 4, 20000, 2048
	bytesFor := func(codec compress.Codec) CompressedStats {
		w := mpi.NewWorld(n)
		defer w.Close()
		var st CompressedStats
		err := w.Run(func(c *mpi.Comm) error {
			data := rankVec(length, c.Rank())
			s, err := BucketedAllReduce(c, data, codec, CompressedOptions{BucketFloats: bucket})
			if c.Rank() == 0 {
				st = s
			}
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	id := bytesFor(compress.Identity{})
	i8 := bytesFor(compress.Int8{})
	tk := bytesFor(compress.TopK{Ratio: 0.05})
	if id.BytesSent != id.RawBytes || id.BytesSent != int64(4*length*(n-1)) {
		t.Fatalf("identity sent %d bytes, want raw %d", id.BytesSent, int64(4*length*(n-1)))
	}
	if i8.BytesSent >= id.BytesSent || tk.BytesSent >= id.BytesSent {
		t.Fatalf("lossy codecs must send fewer bytes: id=%d int8=%d topk=%d", id.BytesSent, i8.BytesSent, tk.BytesSent)
	}
	if i8.BytesRecv != i8.BytesSent {
		t.Fatalf("symmetric exchange: recv %d != sent %d", i8.BytesRecv, i8.BytesSent)
	}
	if r := i8.Ratio(); r < 3.5 || r > 4.1 {
		t.Fatalf("int8 compression ratio %v, want ~3.97", r)
	}
	if tk.Ratio() < 4 {
		t.Fatalf("topk@0.05 compression ratio %v, want > 4", tk.Ratio())
	}
	var zero CompressedStats
	if zero.Ratio() != 1 {
		t.Fatalf("empty stats ratio %v, want 1", zero.Ratio())
	}
	sum := id
	sum.Add(i8)
	if sum.BytesSent != id.BytesSent+i8.BytesSent || sum.Buckets != id.Buckets+i8.Buckets {
		t.Fatal("Add does not accumulate")
	}
}

func TestBucketedEmptyVector(t *testing.T) {
	w := mpi.NewWorld(2)
	defer w.Close()
	err := w.Run(func(c *mpi.Comm) error {
		st, err := BucketedAllReduce(c, nil, compress.Identity{}, CompressedOptions{})
		if err != nil {
			return err
		}
		if st.Buckets != 0 || st.BytesSent != 0 {
			return fmt.Errorf("empty vector produced stats %+v", st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
