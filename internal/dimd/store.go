package dimd

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/imagecodec"
	"repro/internal/mpi"
	"repro/internal/tensor"
)

// Store is one learner's in-memory partition of the dataset, exposing the
// paper's three DIMD APIs: partitioned load, random in-memory batch load,
// and cross-learner shuffle.
type Store struct {
	recs []Record
}

// LoadPartition implements the Partitioned Load API: learner rank of size
// takes its contiguous share of the pack. With size == 1 the learner holds
// the full dataset (the paper's "each learner can hold the entire data set"
// extreme); larger sizes split it 1/size each.
func LoadPartition(p *Pack, rank, size int) (*Store, error) {
	if size <= 0 || rank < 0 || rank >= size {
		return nil, fmt.Errorf("dimd: invalid partition rank %d of %d", rank, size)
	}
	lo, hi := PartitionBounds(p.N(), rank, size)
	s := &Store{recs: make([]Record, 0, hi-lo)}
	for i := lo; i < hi; i++ {
		r := p.Record(i)
		// Copy out of the pack so the Store owns its bytes (the pack may be
		// released after load, as the paper's loader drops the file).
		data := make([]byte, len(r.Data))
		copy(data, r.Data)
		s.recs = append(s.recs, Record{Label: r.Label, Data: data})
	}
	return s, nil
}

// NewStore wraps pre-built records (tests, generators).
func NewStore(recs []Record) *Store { return &Store{recs: recs} }

// Len returns the number of locally held images.
func (s *Store) Len() int { return len(s.recs) }

// Record returns local image i.
func (s *Store) Record(i int) Record { return s.recs[i] }

// Bytes returns the total payload size held locally (memory-utilization
// reporting in Figures 7-9).
func (s *Store) Bytes() int64 {
	var total int64
	for _, r := range s.recs {
		total += int64(len(r.Data))
	}
	return total
}

// RandomBatch implements the Random In-Memory Batch Load API: n records
// sampled uniformly (with replacement across batches, without within one
// batch when possible) from the local partition.
func (s *Store) RandomBatch(rng *tensor.RNG, n int) ([]Record, error) {
	if len(s.recs) == 0 {
		return nil, errors.New("dimd: RandomBatch on empty store")
	}
	out := make([]Record, n)
	if n <= len(s.recs) {
		// Partial Fisher-Yates over indices: distinct samples.
		idx := rng.Perm(len(s.recs))[:n]
		for i, j := range idx {
			out[i] = s.recs[j]
		}
		return out, nil
	}
	for i := range out {
		out[i] = s.recs[rng.Intn(len(s.recs))]
	}
	return out, nil
}

// ShuffleOptions tunes the cross-learner shuffle.
type ShuffleOptions struct {
	// Segments is Algorithm 2's m: the local data is split into m segments
	// and exchanged with m successive alltoallv calls, working around
	// >32-bit payload offsets. Default 1.
	Segments int
	// Seed drives destination assignment and the local permutation; all
	// ranks may pass different seeds (each rank routes only its own data).
	Seed int64
}

// Shuffle implements the Shuffle API (paper Algorithm 2): every local record
// is sent to a uniformly random learner in comm via AllToAllV, in Segments
// rounds, and the received records are locally permuted. Restricting comm to
// a sub-communicator gives the group-based shuffle of Figure 9.
func (s *Store) Shuffle(comm *mpi.Comm, opts ShuffleOptions) error {
	m := opts.Segments
	if m <= 0 {
		m = 1
	}
	if m > len(s.recs) && len(s.recs) > 0 {
		m = len(s.recs)
	}
	n := comm.Size()
	rng := tensor.NewRNG(opts.Seed*1_000_000_007 + int64(comm.Rank()) + 1)
	var received []Record
	total := len(s.recs)
	for seg := 0; seg < m; seg++ {
		lo := seg * total / m
		hi := (seg + 1) * total / m
		// Assign each record in this segment a random destination.
		buckets := make([][]Record, n)
		for _, r := range s.recs[lo:hi] {
			d := rng.Intn(n)
			buckets[d] = append(buckets[d], r)
		}
		send := make([][]byte, n)
		for d, b := range buckets {
			send[d] = marshalRecords(b)
		}
		got, err := comm.AllToAllV(send)
		if err != nil {
			return fmt.Errorf("dimd: shuffle alltoallv: %w", err)
		}
		for _, b := range got {
			recs, err := unmarshalRecords(b)
			if err != nil {
				return fmt.Errorf("dimd: shuffle decode: %w", err)
			}
			received = append(received, recs...)
		}
	}
	// Local permutation of the collected output (Algorithm 2's final loop).
	rng.Shuffle(len(received), func(i, j int) {
		received[i], received[j] = received[j], received[i]
	})
	s.recs = received
	return nil
}

// marshalRecords frames records as [count u32] then per record
// [label i32][len u32][bytes].
func marshalRecords(recs []Record) []byte {
	size := 4
	for _, r := range recs {
		size += 8 + len(r.Data)
	}
	out := make([]byte, size)
	binary.LittleEndian.PutUint32(out, uint32(len(recs)))
	pos := 4
	for _, r := range recs {
		binary.LittleEndian.PutUint32(out[pos:], uint32(r.Label))
		binary.LittleEndian.PutUint32(out[pos+4:], uint32(len(r.Data)))
		copy(out[pos+8:], r.Data)
		pos += 8 + len(r.Data)
	}
	return out
}

func unmarshalRecords(b []byte) ([]Record, error) {
	if len(b) < 4 {
		return nil, errors.New("dimd: record frame too short")
	}
	count := int(binary.LittleEndian.Uint32(b))
	pos := 4
	recs := make([]Record, 0, count)
	for i := 0; i < count; i++ {
		if pos+8 > len(b) {
			return nil, errors.New("dimd: truncated record header")
		}
		label := int32(binary.LittleEndian.Uint32(b[pos:]))
		n := int(binary.LittleEndian.Uint32(b[pos+4:]))
		pos += 8
		if pos+n > len(b) {
			return nil, errors.New("dimd: truncated record payload")
		}
		data := make([]byte, n)
		copy(data, b[pos:pos+n])
		pos += n
		recs = append(recs, Record{Label: label, Data: data})
	}
	if pos != len(b) {
		return nil, errors.New("dimd: trailing bytes in record frame")
	}
	return recs, nil
}

// GroupRanks returns the member ranks of rank's shuffle group when comm is
// split into numGroups contiguous groups — the layout behind the paper's
// group-based shuffle ("we can divide the learners into groups such that
// each group collectively owns the entire dataset").
func GroupRanks(size, numGroups, rank int) ([]int, error) {
	if numGroups <= 0 || numGroups > size {
		return nil, fmt.Errorf("dimd: %d groups over %d ranks", numGroups, size)
	}
	g := rank * numGroups / size
	lo := g * size / numGroups
	hi := (g + 1) * size / numGroups
	ranks := make([]int, 0, hi-lo)
	for r := lo; r < hi; r++ {
		ranks = append(ranks, r)
	}
	return ranks, nil
}

// SampleTensors decodes and augments a random mini-batch into x (shape
// [n, 3, crop, crop]) and labels — the step that feeds the GPU compute in
// the paper's Figure 1 ("in-memory JPEG decompresser ... generate image
// tensor objects").
func (s *Store) SampleTensors(rng *tensor.RNG, aug imagecodec.Augment, x *tensor.Tensor, labels []int) error {
	batch, err := s.RandomBatch(rng, x.Dim(0))
	if err != nil {
		return err
	}
	return DecodeToTensors(batch, rng, aug, x, labels)
}

// DecodeToTensors decodes and augments records into x (shape
// [len(recs), 3, crop, crop]) and labels. Both the DIMD store and the
// baseline file loader feed the trainer through this path.
func DecodeToTensors(recs []Record, rng *tensor.RNG, aug imagecodec.Augment, x *tensor.Tensor, labels []int) error {
	n := x.Dim(0)
	if len(labels) != n || len(recs) != n {
		return fmt.Errorf("dimd: batch %d records / %d labels for tensor dim0 %d", len(recs), len(labels), n)
	}
	slab := 3 * aug.Crop * aug.Crop
	if x.Len() != n*slab {
		return fmt.Errorf("dimd: tensor size %d, want %d", x.Len(), n*slab)
	}
	for i, r := range recs {
		im, err := imagecodec.Decode(r.Data)
		if err != nil {
			return fmt.Errorf("dimd: decoding record: %w", err)
		}
		if err := aug.Apply(im, rng, x.Data[i*slab:(i+1)*slab]); err != nil {
			return err
		}
		labels[i] = int(r.Label)
	}
	return nil
}
