// Package detect is the failure-detection subsystem: a per-rank heartbeat
// monitor that turns silence into suspicion, and a spare pool that lets
// standby identities announce themselves for admission at the next
// membership epoch.
//
// The monitor runs over an ordinary *mpi.Comm — ideally a dedicated
// sub-communicator, whose isolated message context keeps heartbeat traffic
// from ever colliding with training collectives — so the same implementation
// covers both the in-memory mailbox transport and the real TCP transport.
// Each rank periodically sends a small heartbeat frame to every peer, with a
// deterministic per-rank jitter on the send interval so a synchronized
// world does not burst all its heartbeats onto the fabric at the same
// instant. A receiver goroutine polls TryRecv (never blocking, so the
// monitor can never deadlock a transport) and tracks per-peer arrival
// times; a peer silent past the suspicion window is declared suspect
// exactly once and reported through the Suspect callback.
//
// Suspicion deliberately produces no new error type: the callback is
// expected to down-mark the silent rank at the local transport (
// mpi.World.Suspect or mpi.TCPWorld.MarkDown), which makes every blocked
// or future receive from it fail with the existing typed *mpi.RankDownError.
// That is what removes the "a survivor happens to be blocked receiving from
// the dead rank" precondition of the per-Recv detection timeout: the monitor
// notices the silence even when every survivor is busy computing or blocked
// on a different peer, and the next touch of the dead rank fails typed.
//
// The suspicion rule is a miss-count accrual: a peer is suspected once
// nothing has arrived for SuspectAfter (default MissFactor heartbeat
// intervals). This is the degenerate fixed-threshold form of phi-accrual
// detection; the monitor additionally tracks observed inter-arrival times,
// and Phi exposes the accrual level (elapsed silence over mean observed
// inter-arrival) for callers that want a graded signal instead of the
// binary verdict.
package detect

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/mpi"
)

// Heartbeat frame: [epoch:8][identity:4][flags:1].
const (
	hbFrameLen   = 13
	flagStandby  = 1 << 0
	DefaultTag   = 1 // user-tag on the monitor's comm; all monitor traffic uses it
	MissFactor   = 8 // default SuspectAfter = MissFactor × Interval
	pollDivisor  = 4 // receiver polls at Interval/pollDivisor
	jitterFactor = 0.25
)

// Config parameterizes a Monitor. The zero value is usable: every field
// has a default.
type Config struct {
	// Interval is the base heartbeat send period (default 50ms). The actual
	// period is jittered ±25% deterministically from Seed and the rank, so
	// a synchronized world does not phase-lock its heartbeat bursts.
	Interval time.Duration
	// SuspectAfter is the silence window after which a peer is declared
	// suspect (default MissFactor × Interval). It must comfortably exceed
	// one interval; values below 2× are raised to 2×.
	SuspectAfter time.Duration
	// Epoch is the membership epoch stamped on outgoing heartbeats.
	Epoch uint64
	// Identity is the stable trainer identity stamped on outgoing
	// heartbeats (defaults to the comm rank). Standby registration reports
	// this identity to the spare pool.
	Identity int
	// Standby marks this member as a spare: its heartbeats carry the
	// standby flag, and peers with an attached SparePool register the
	// identity for admission at the next membership epoch.
	Standby bool
	// Seed drives the send jitter (default: rank-mixed constant).
	Seed int64
	// OnSuspect is invoked exactly once per suspected peer rank, from the
	// monitor's receiver goroutine. It should down-mark the rank at the
	// local transport so receives fail typed; it must not block.
	OnSuspect func(rank int)
	// Spares, when non-nil, collects standby identities observed in
	// incoming heartbeats.
	Spares *SparePool
	// Tag overrides the user-tag heartbeats travel on (default DefaultTag).
	Tag int
}

// Monitor is one rank's heartbeat failure detector. Create with NewMonitor,
// arm with Start, and Stop before tearing the transport down.
type Monitor struct {
	comm *mpi.Comm
	cfg  Config

	mu        sync.Mutex
	lastSeen  []time.Time
	meanGap   []float64 // observed inter-arrival mean per peer, seconds
	suspected []bool
	stop      chan struct{}
	done      sync.WaitGroup
	started   bool
}

// NewMonitor builds a monitor over the given communicator. The comm should
// be a dedicated sub-communicator (Comm.Sub over all ranks) so heartbeat
// frames can never be mistaken for application traffic.
func NewMonitor(c *mpi.Comm, cfg Config) *Monitor {
	if cfg.Interval <= 0 {
		cfg.Interval = 50 * time.Millisecond
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = MissFactor * cfg.Interval
	}
	if cfg.SuspectAfter < 2*cfg.Interval {
		cfg.SuspectAfter = 2 * cfg.Interval
	}
	if cfg.Tag <= 0 {
		cfg.Tag = DefaultTag
	}
	if cfg.Identity == 0 {
		cfg.Identity = c.Rank()
	}
	m := &Monitor{
		comm:      c,
		cfg:       cfg,
		lastSeen:  make([]time.Time, c.Size()),
		meanGap:   make([]float64, c.Size()),
		suspected: make([]bool, c.Size()),
		stop:      make(chan struct{}),
	}
	return m
}

// Start arms the monitor: a sender goroutine emits jittered heartbeats and
// a receiver goroutine polls for peer heartbeats and raises suspicion. The
// silence clock for every peer starts now, so a peer that is already dead
// at Start is suspected after one full window.
func (m *Monitor) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	now := time.Now()
	for i := range m.lastSeen {
		m.lastSeen[i] = now
	}
	m.mu.Unlock()
	m.done.Add(2)
	go m.sendLoop()
	go m.recvLoop()
}

// Stop tears the monitor down and waits for its goroutines. Idempotent.
func (m *Monitor) Stop() {
	m.mu.Lock()
	if !m.started {
		m.mu.Unlock()
		return
	}
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	m.mu.Unlock()
	m.done.Wait()
}

// Suspected reports whether the monitor has declared the peer suspect.
func (m *Monitor) Suspected(rank int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.suspected[rank]
}

// Phi returns the accrual suspicion level for a peer: elapsed silence over
// the mean observed inter-arrival time (0 when nothing has ever arrived and
// the monitor has not run long enough to judge). Values around 1 are
// normal; values near SuspectAfter/Interval mean the binary verdict is
// imminent.
func (m *Monitor) Phi(rank int) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	gap := m.meanGap[rank]
	if gap <= 0 {
		gap = m.cfg.Interval.Seconds()
	}
	return time.Since(m.lastSeen[rank]).Seconds() / gap
}

func (m *Monitor) sendLoop() {
	defer m.done.Done()
	rng := rand.New(rand.NewSource(m.cfg.Seed ^ int64(uint64(m.comm.Rank()+1)*0x9e3779b97f4a7c15)))
	var frame [hbFrameLen]byte
	binary.LittleEndian.PutUint64(frame[0:], m.cfg.Epoch)
	binary.LittleEndian.PutUint32(frame[8:], uint32(m.cfg.Identity))
	if m.cfg.Standby {
		frame[12] |= flagStandby
	}
	for {
		for p := 0; p < m.comm.Size(); p++ {
			if p == m.comm.Rank() {
				continue
			}
			// A failed send means the peer is already known dead (or the
			// transport is reconnecting); either way the silence on their
			// side does the detecting — nothing to do here.
			_ = m.comm.Send(p, m.cfg.Tag, frame[:])
		}
		jitter := 1 + jitterFactor*(2*rng.Float64()-1)
		select {
		case <-m.stop:
			return
		case <-time.After(time.Duration(float64(m.cfg.Interval) * jitter)):
		}
	}
}

func (m *Monitor) recvLoop() {
	defer m.done.Done()
	poll := m.cfg.Interval / pollDivisor
	if poll <= 0 {
		poll = time.Millisecond
	}
	for {
		for p := 0; p < m.comm.Size(); p++ {
			if p == m.comm.Rank() {
				continue
			}
			m.drain(p)
		}
		m.judge()
		select {
		case <-m.stop:
			return
		case <-time.After(poll):
		}
	}
}

// drain consumes every queued heartbeat from peer p without blocking.
func (m *Monitor) drain(p int) {
	for {
		b, ok, err := m.comm.TryRecv(p, m.cfg.Tag)
		if err != nil || !ok {
			return // down, closed, or nothing queued: the judge decides
		}
		if len(b) == hbFrameLen {
			identity := int(binary.LittleEndian.Uint32(b[8:]))
			standby := b[12]&flagStandby != 0
			now := time.Now()
			m.mu.Lock()
			if !m.lastSeen[p].IsZero() {
				gap := now.Sub(m.lastSeen[p]).Seconds()
				if m.meanGap[p] == 0 {
					m.meanGap[p] = gap
				} else {
					m.meanGap[p] = 0.8*m.meanGap[p] + 0.2*gap
				}
			}
			m.lastSeen[p] = now
			m.mu.Unlock()
			if standby && m.cfg.Spares != nil {
				m.cfg.Spares.Register(identity)
			}
		}
		mpi.PutBytes(b)
	}
}

// judge raises suspicion for peers silent past the window.
func (m *Monitor) judge() {
	now := time.Now()
	var newly []int
	m.mu.Lock()
	for p := range m.lastSeen {
		if p == m.comm.Rank() || m.suspected[p] {
			continue
		}
		if now.Sub(m.lastSeen[p]) > m.cfg.SuspectAfter {
			m.suspected[p] = true
			newly = append(newly, p)
		}
	}
	m.mu.Unlock()
	for _, p := range newly {
		if m.cfg.OnSuspect != nil {
			m.cfg.OnSuspect(p)
		}
	}
}

// SparePool is the standby registry: identities that are alive and willing
// to join the job but hold no rank in the current membership. Standbys
// register (directly or via the heartbeat standby flag); the membership
// orchestrator drains the pool at an epoch boundary and admits the pending
// identities through the same grow path a rejoin uses — no prior crash
// required.
type SparePool struct {
	mu      sync.Mutex
	pending map[int]bool
	members map[int]bool
}

// NewSparePool creates an empty pool. members lists the identities already
// holding ranks; their registrations are ignored.
func NewSparePool(members []int) *SparePool {
	p := &SparePool{pending: make(map[int]bool), members: make(map[int]bool)}
	for _, m := range members {
		p.members[m] = true
	}
	return p
}

// Register announces a standby identity. Registering a current member or a
// duplicate is a no-op, so heartbeat-driven registration is idempotent.
func (p *SparePool) Register(identity int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.members[identity] {
		return
	}
	p.pending[identity] = true
}

// Pending returns the registered standbys awaiting admission, sorted.
func (p *SparePool) Pending() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := make([]int, 0, len(p.pending))
	for id := range p.pending {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Admit moves an identity from pending to member at an epoch boundary.
// It errors if the identity was never registered.
func (p *SparePool) Admit(identity int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.pending[identity] {
		return fmt.Errorf("detect: identity %d is not a pending spare", identity)
	}
	delete(p.pending, identity)
	p.members[identity] = true
	return nil
}

// Evict returns an identity to non-member status (a shrink); it may
// re-register later.
func (p *SparePool) Evict(identity int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.members, identity)
}

// ErrNoSpares is returned by Take when the pool is empty.
var ErrNoSpares = errors.New("detect: no pending spares")

// Take admits and returns the lowest pending identity, or ErrNoSpares.
func (p *SparePool) Take() (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	best := -1
	for id := range p.pending {
		if best < 0 || id < best {
			best = id
		}
	}
	if best < 0 {
		return 0, ErrNoSpares
	}
	delete(p.pending, best)
	p.members[best] = true
	return best, nil
}
