package nn

import (
	"testing"

	"repro/internal/tensor"
)

// TestBackwardNotifyReachesNestedParams: notification must recurse through
// nested Sequential containers and fire exactly once per parameter, in
// backward order (later layers first), with the gradient already final.
func TestBackwardNotifyReachesNestedParams(t *testing.T) {
	rng := tensor.NewRNG(1)
	inner := NewSequential("inner",
		NewConv2D("c2", 4, 4, 3, 3, 1, 1, 1, 1, ConvOpts{Bias: true}, rng),
		NewReLU("r2"),
	)
	model := NewSequential("outer",
		NewConv2D("c1", 3, 4, 3, 3, 1, 1, 1, 1, ConvOpts{Bias: true}, rng),
		NewReLU("r1"),
		inner,
		NewFlatten("fl"),
		NewLinear("fc", 4*6*6, 2, rng),
	)
	x := tensor.New(2, 3, 6, 6)
	rng.FillNormal(x, 0, 1)
	out := model.Forward(x, true)
	gradOut := tensor.New(out.Shape()...)
	rng.FillNormal(gradOut, 0, 1)

	ZeroGrads(model.Params())
	var notified []*Param
	snapshots := make(map[*Param][]float32)
	BackwardNotify(model, gradOut, func(p *Param) {
		notified = append(notified, p)
		snapshots[p] = append([]float32(nil), p.Grad.Data...)
	})

	params := model.Params()
	if len(notified) != len(params) {
		t.Fatalf("notified %d params, model has %d", len(notified), len(params))
	}
	seen := make(map[*Param]int)
	for _, p := range notified {
		seen[p]++
	}
	for _, p := range params {
		if seen[p] != 1 {
			t.Fatalf("param %s notified %d times, want 1", p.Name, seen[p])
		}
	}
	// Backward order: the linear layer's params come before conv c1's.
	if notified[0].Name != "fc.weight" && notified[0].Name != "fc.bias" {
		t.Fatalf("first notified param %s, want the final linear layer's", notified[0].Name)
	}
	last := notified[len(notified)-1]
	if last.Name != "c1.weight" && last.Name != "c1.bias" {
		t.Fatalf("last notified param %s, want the first conv's", last.Name)
	}
	// Gradients were final at notification time.
	for p, snap := range snapshots {
		for i, v := range p.Grad.Data {
			if snap[i] != v {
				t.Fatalf("param %s grad[%d] changed after notification: %v -> %v", p.Name, i, snap[i], v)
			}
		}
	}
}

// TestBackwardNotifyNilHookMatchesBackward: a nil hook must be a pure
// Backward (same gradient in, same accumulators).
func TestBackwardNotifyNilHookMatchesBackward(t *testing.T) {
	build := func() (*Sequential, *tensor.Tensor, *tensor.Tensor) {
		rng := tensor.NewRNG(7)
		m := NewSequential("m",
			NewConv2D("c", 3, 4, 3, 3, 1, 1, 1, 1, ConvOpts{}, rng),
			NewReLU("r"),
			NewFlatten("fl"),
			NewLinear("fc", 4*5*5, 3, rng),
		)
		x := tensor.New(2, 3, 5, 5)
		rng.FillNormal(x, 0, 1)
		out := m.Forward(x, true)
		g := tensor.New(out.Shape()...)
		rng.FillNormal(g, 0, 1)
		return m, g, x
	}
	m1, g1, _ := build()
	m2, g2, _ := build()
	ZeroGrads(m1.Params())
	ZeroGrads(m2.Params())
	in1 := m1.Backward(g1)
	in2 := BackwardNotify(m2, g2, nil)
	if !in1.ApproxEqual(in2, 0) {
		t.Fatal("input gradients differ")
	}
	p1, p2 := m1.Params(), m2.Params()
	for i := range p1 {
		for j := range p1[i].Grad.Data {
			if p1[i].Grad.Data[j] != p2[i].Grad.Data[j] {
				t.Fatalf("param %s grad[%d] differs", p1[i].Name, j)
			}
		}
	}
}
