package models

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Residual wraps a main path and an optional shortcut projection with the
// post-addition ReLU, implementing He et al.'s residual connection:
// y = ReLU(Body(x) + Shortcut(x)), Shortcut defaulting to identity.
type Residual struct {
	name     string
	Body     nn.Layer
	Shortcut nn.Layer // nil means identity
	mask     []bool   // post-add ReLU mask
}

// NewResidual constructs a residual block. shortcut may be nil for identity.
func NewResidual(name string, body, shortcut nn.Layer) *Residual {
	return &Residual{name: name, Body: body, Shortcut: shortcut}
}

// Name implements nn.Layer.
func (r *Residual) Name() string { return r.name }

// Params implements nn.Layer.
func (r *Residual) Params() []*nn.Param {
	ps := r.Body.Params()
	if r.Shortcut != nil {
		ps = append(ps, r.Shortcut.Params()...)
	}
	return ps
}

// Forward implements nn.Layer.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	main := r.Body.Forward(x, train)
	short := x
	if r.Shortcut != nil {
		short = r.Shortcut.Forward(x, train)
	}
	if !main.SameShape(short) {
		panic(fmt.Sprintf("models: %s residual shapes differ: %v vs %v", r.name, main.Shape(), short.Shape()))
	}
	out := tensor.New(main.Shape()...)
	if len(r.mask) < out.Len() {
		r.mask = make([]bool, out.Len())
	}
	for i := range main.Data {
		v := main.Data[i] + short.Data[i]
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

// Backward implements nn.Layer.
func (r *Residual) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	return r.BackwardWithGradHook(gradOut, nil)
}

// BackwardWithGradHook implements nn.GradNotifier, propagating readiness
// notification into both the main path and the shortcut projection — the
// branch parameters a child-granularity hook would miss.
func (r *Residual) BackwardWithGradHook(gradOut *tensor.Tensor, hook nn.ParamHook) *tensor.Tensor {
	g := tensor.New(gradOut.Shape()...)
	for i, v := range gradOut.Data {
		if r.mask[i] {
			g.Data[i] = v
		}
	}
	gradIn := nn.BackwardNotify(r.Body, g, hook)
	if r.Shortcut != nil {
		gradIn.Add(nn.BackwardNotify(r.Shortcut, g, hook))
	} else {
		gradIn.Add(g)
	}
	return gradIn
}

// Branches runs several sub-networks on the same input and concatenates
// their outputs along the channel axis — the inception module's join. Every
// branch must produce the same N, H, W.
type Branches struct {
	name     string
	Paths    []nn.Layer
	chansOut []int
	inShape  []int
}

// NewBranches constructs a channel-concat container over paths.
func NewBranches(name string, paths ...nn.Layer) *Branches {
	return &Branches{name: name, Paths: paths}
}

// Name implements nn.Layer.
func (b *Branches) Name() string { return b.name }

// Params implements nn.Layer.
func (b *Branches) Params() []*nn.Param {
	var ps []*nn.Param
	for _, p := range b.Paths {
		ps = append(ps, p.Params()...)
	}
	return ps
}

// Forward implements nn.Layer.
func (b *Branches) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	b.inShape = append(b.inShape[:0], x.Shape()...)
	outs := make([]*tensor.Tensor, len(b.Paths))
	b.chansOut = b.chansOut[:0]
	totalC := 0
	for i, p := range b.Paths {
		outs[i] = p.Forward(x, train)
		if i > 0 {
			if outs[i].Dim(0) != outs[0].Dim(0) || outs[i].Dim(2) != outs[0].Dim(2) || outs[i].Dim(3) != outs[0].Dim(3) {
				panic(fmt.Sprintf("models: %s branch %d shape %v incompatible with %v", b.name, i, outs[i].Shape(), outs[0].Shape()))
			}
		}
		b.chansOut = append(b.chansOut, outs[i].Dim(1))
		totalC += outs[i].Dim(1)
	}
	n, h, w := outs[0].Dim(0), outs[0].Dim(2), outs[0].Dim(3)
	out := tensor.New(n, totalC, h, w)
	hw := h * w
	for img := 0; img < n; img++ {
		cOff := 0
		for i, o := range outs {
			c := b.chansOut[i]
			src := o.Data[img*c*hw : (img+1)*c*hw]
			dst := out.Data[(img*totalC+cOff)*hw : (img*totalC+cOff+c)*hw]
			copy(dst, src)
			cOff += c
		}
	}
	return out
}

// Backward implements nn.Layer.
func (b *Branches) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	return b.BackwardWithGradHook(gradOut, nil)
}

// BackwardWithGradHook implements nn.GradNotifier: each path's slice of the
// concatenated gradient is split off and run backward with the hook, so
// every inception-branch parameter is reported as soon as its path finishes.
func (b *Branches) BackwardWithGradHook(gradOut *tensor.Tensor, hook nn.ParamHook) *tensor.Tensor {
	n, h, w := gradOut.Dim(0), gradOut.Dim(2), gradOut.Dim(3)
	totalC := gradOut.Dim(1)
	hw := h * w
	gradIn := tensor.New(b.inShape...)
	cOff := 0
	for i, p := range b.Paths {
		c := b.chansOut[i]
		gb := tensor.New(n, c, h, w)
		for img := 0; img < n; img++ {
			src := gradOut.Data[(img*totalC+cOff)*hw : (img*totalC+cOff+c)*hw]
			dst := gb.Data[img*c*hw : (img+1)*c*hw]
			copy(dst, src)
		}
		gradIn.Add(nn.BackwardNotify(p, gb, hook))
		cOff += c
	}
	return gradIn
}

// convBN returns the conv→BN→ReLU unit both architectures are built from.
func convBN(name string, inC, outC, kh, kw, sh, sw, ph, pw int, rng *tensor.RNG) *nn.Sequential {
	return nn.NewSequential(name,
		nn.NewConv2D(name+".conv", inC, outC, kh, kw, sh, sw, ph, pw, nn.ConvOpts{}, rng),
		nn.NewBatchNorm2D(name+".bn", outC, rng),
		nn.NewReLU(name+".relu"),
	)
}

// convBNNoReLU is convBN without the activation (used before residual adds).
func convBNNoReLU(name string, inC, outC, kh, kw, sh, sw, ph, pw int, rng *tensor.RNG) *nn.Sequential {
	return nn.NewSequential(name,
		nn.NewConv2D(name+".conv", inC, outC, kh, kw, sh, sw, ph, pw, nn.ConvOpts{}, rng),
		nn.NewBatchNorm2D(name+".bn", outC, rng),
	)
}
