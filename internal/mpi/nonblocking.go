package mpi

import "fmt"

// Request is a handle to an in-flight non-blocking operation. Wait blocks
// until completion and returns the received payload (nil for sends).
type Request struct {
	done chan struct{}
	data []byte
	err  error
}

// Wait blocks until the operation completes.
func (r *Request) Wait() ([]byte, error) {
	<-r.done
	return r.data, r.err
}

// Test reports whether the operation has completed without blocking.
func (r *Request) Test() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Isend starts a non-blocking send. The data buffer must not be modified
// until Wait returns (as in MPI; the in-memory transport copies eagerly but
// the TCP transport writes from the caller's buffer).
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	r := &Request{done: make(chan struct{})}
	go func() {
		r.err = c.Send(dst, tag, data)
		close(r.done)
	}()
	return r
}

// Irecv starts a non-blocking receive matching (src, tag).
func (c *Comm) Irecv(src, tag int) *Request {
	r := &Request{done: make(chan struct{})}
	go func() {
		r.data, r.err = c.Recv(src, tag)
		close(r.done)
	}()
	return r
}

// WaitAll waits for every request, returning the first error.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ReduceScatterFloats sums equal-length vectors across all ranks and leaves
// each rank with its ChunkBounds-style share of the result: rank r receives
// the summed elements [r·L/n, (r+1)·L/n). Ring algorithm, n-1 steps.
func (c *Comm) ReduceScatterFloats(data []float32) ([]float32, error) {
	n := c.Size()
	rank := c.Rank()
	chunk := func(i int) (int, int) {
		i = ((i % n) + n) % n
		return i * len(data) / n, (i + 1) * len(data) / n
	}
	if n == 1 {
		lo, hi := chunk(0)
		out := make([]float32, hi-lo)
		copy(out, data[lo:hi])
		return out, nil
	}
	right := (rank + 1) % n
	left := (rank - 1 + n) % n
	work := make([]float32, len(data))
	copy(work, data)
	// Schedule offset -1 so the fully-reduced chunk lands at index rank.
	for s := 0; s < n-1; s++ {
		sLo, sHi := chunk(rank - s - 1)
		if err := c.SendFloats(right, tagReduce+1024+s, work[sLo:sHi]); err != nil {
			return nil, err
		}
		b, err := c.Recv(left, tagReduce+1024+s)
		if err != nil {
			return nil, err
		}
		rLo, rHi := chunk(rank - s - 2)
		if len(b) != 4*(rHi-rLo) {
			return nil, fmt.Errorf("mpi: reduce-scatter chunk %d bytes, want %d", len(b), 4*(rHi-rLo))
		}
		tmp := make([]float32, rHi-rLo)
		DecodeFloat32s(tmp, b)
		for i, v := range tmp {
			work[rLo+i] += v
		}
	}
	lo, hi := chunk(rank)
	out := make([]float32, hi-lo)
	copy(out, work[lo:hi])
	return out, nil
}
