// workloads analyzes the communication sensitivity of every CNN the paper's
// introduction motivates — AlexNet, NiN, GoogLeNet-BN, ResNet-50, VGG-16 —
// on the simulated Minsky cluster: which models are communication-bound on
// the stock OpenMPI stack, and how much the multi-color allreduce buys each.
// It also verifies the payload constants against the real models built by
// internal/models.
//
// Run: go run ./examples/workloads
package main

import (
	"fmt"
	"log"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/simcluster"
	"repro/internal/tensor"
)

func main() {
	fmt.Println("Verifying payloads against the real models (fp32 parameter bytes):")
	rng := tensor.NewRNG(1)
	builders := map[string]func() *nn.Sequential{
		"alexnet":  func() *nn.Sequential { return models.NewAlexNet(1000, rng) },
		"nin":      func() *nn.Sequential { return models.NewNiN(1000, rng) },
		"resnet50": func() *nn.Sequential { return models.NewResNet50(1000, rng) },
		"vgg16":    func() *nn.Sequential { return models.NewVGG16(1000, rng) },
	}
	for _, w := range simcluster.MotivatingWorkloads() {
		build, ok := builders[w.Name]
		if !ok {
			fmt.Printf("  %-12s %6.0f MB (paper-stated payload)\n", w.Name, w.PayloadBytes/1e6)
			continue
		}
		real := float64(models.ParamBytes(build()))
		status := "MATCH"
		if real != w.PayloadBytes {
			status = fmt.Sprintf("MISMATCH (model has %.0f MB)", real/1e6)
		}
		fmt.Printf("  %-12s %6.0f MB  %s\n", w.Name, w.PayloadBytes/1e6, status)
	}
	fmt.Println()

	c := simcluster.New(64, simcluster.DefaultParams())
	for _, nodes := range []int{8, 32} {
		_, tbl, err := c.CommSensitivity(nodes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tbl)
	}
	fmt.Println("Reading: AlexNet and VGG-16 are communication-bound on the stock stack")
	fmt.Println("(giant FC-layer payloads), so the multi-color allreduce buys them the")
	fmt.Println("most; NiN's 30 MB payload barely notices the network. ResNet-50 and")
	fmt.Println("GoogLeNetBN — the paper's workloads — sit in between, which is why the")
	fmt.Println("paper pairs the communication fix with the I/O and scheduling fixes.")
}
