package mpi

import (
	"fmt"
	"testing"
)

func TestIsendIrecv(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			r1 := c.Isend(1, 1, []byte("a"))
			r2 := c.Isend(1, 2, []byte("b"))
			return WaitAll(r1, r2)
		}
		// Post receives before looking at either: out-of-order completion.
		r2 := c.Irecv(0, 2)
		r1 := c.Irecv(0, 1)
		b2, err := r2.Wait()
		if err != nil {
			return err
		}
		b1, err := r1.Wait()
		if err != nil {
			return err
		}
		if string(b1) != "a" || string(b2) != "b" {
			return fmt.Errorf("got %q %q", b1, b2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRequestTest(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Barrier(); err != nil {
				return err
			}
			return c.Send(1, 5, []byte("x"))
		}
		r := c.Irecv(0, 5)
		if r.Test() {
			return fmt.Errorf("request complete before send")
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if _, err := r.Wait(); err != nil {
			return err
		}
		if !r.Test() {
			return fmt.Errorf("request not complete after Wait")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatter(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		for _, length := range []int{1, 7, 64} {
			if length < n {
				continue
			}
			w := NewWorld(n)
			err := w.Run(func(c *Comm) error {
				data := make([]float32, length)
				for i := range data {
					data[i] = float32((c.Rank() + 1) * (i + 1))
				}
				got, err := c.ReduceScatterFloats(data)
				if err != nil {
					return err
				}
				lo := c.Rank() * length / n
				hi := (c.Rank() + 1) * length / n
				if len(got) != hi-lo {
					return fmt.Errorf("rank %d got %d elems, want %d", c.Rank(), len(got), hi-lo)
				}
				var rankSum float32
				for r := 1; r <= n; r++ {
					rankSum += float32(r)
				}
				for i, v := range got {
					want := rankSum * float32(lo+i+1)
					if v != want {
						return fmt.Errorf("rank %d elem %d = %v, want %v", c.Rank(), i, v, want)
					}
				}
				return nil
			})
			w.Close()
			if err != nil {
				t.Fatalf("n=%d len=%d: %v", n, length, err)
			}
		}
	}
}
