package elastic

import (
	"testing"
	"time"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/sgd"
)

// baseConfig is a 4-identity sharded-optimizer run: 8 global steps over a
// constant global batch of 12, which divides every world size the tests
// pass through (1, 2, 3, 4).
func baseConfig() Config {
	x, labels := core.SyntheticTensorData(72, 4, 8, 1)
	return Config{
		Identities:  4,
		GlobalBatch: 12,
		Steps:       8,
		NewReplica:  func(seed int64) nn.Layer { return core.SmallBNFreeCNN(4, 8, seed) },
		Data:        x,
		Labels:      labels,
		InputC:      3, InputH: 8, InputW: 8,
		// Keep the failure detector snappy in tests: ranks that race past the
		// victim's crash into a collective recv give up after 2s instead of
		// the 5s production default.
		Plan: Plan{DetectTimeout: 2 * time.Second},
		Learner: core.Config{
			Schedule:       sgd.Const(0.05),
			SGD:            sgd.DefaultConfig(),
			Compression:    compress.Config{Codec: "none"},
			ShardOptimizer: true,
		},
	}
}

// runElastic drives Run under a deadline: recovery must never deadlock.
func runElastic(t *testing.T, cfg Config) *Result {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := Run(cfg)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatal(o.err)
		}
		return o.res
	case <-time.After(120 * time.Second):
		t.Fatal("elastic run deadlocked")
		return nil
	}
}

func requireAllLossesRecorded(t *testing.T, res *Result) {
	t.Helper()
	for s, l := range res.Losses {
		if l <= 0 {
			t.Fatalf("step %d has no recorded loss (%v)", s, l)
		}
	}
}

// A mid-run crash must shrink the world, restore from the latest snapshot,
// and complete every remaining step at the smaller size.
func TestElasticCrashShrinksWorldAndCompletes(t *testing.T) {
	cfg := baseConfig()
	cfg.Plan.CrashAtStep = map[int]int{2: 3}
	res := runElastic(t, cfg)

	if res.Steps != cfg.Steps || res.Incarnations != 2 {
		t.Fatalf("steps=%d incarnations=%d, want %d and 2", res.Steps, res.Incarnations, cfg.Steps)
	}
	if len(res.Events) != 1 {
		t.Fatalf("events %+v, want exactly one crash", res.Events)
	}
	ev := res.Events[0]
	if ev.Kind != KindCrash || ev.Identity != 2 || ev.Step != 3 || ev.OldWorld != 4 || ev.NewWorld != 3 {
		t.Fatalf("crash event %+v, want identity 2 at step 3 shrinking 4→3", ev)
	}
	// Per-step checkpoint cadence: the snapshot at the crash step itself
	// was captured before the victim died, so no steps are recomputed.
	if ev.ResumeStep != 3 || ev.StepsLost != 0 {
		t.Fatalf("crash event %+v, want resume at step 3 with 0 steps lost", ev)
	}
	if ev.RecoverySec <= 0 {
		t.Fatalf("recovery latency %v, want > 0", ev.RecoverySec)
	}
	requireAllLossesRecorded(t, res)
	if len(res.FinalWeights) == 0 {
		t.Fatal("no final weights reported")
	}
}

// With a sparser checkpoint cadence the run resumes from the last capture
// boundary and recomputes the steps in between.
func TestElasticResizeRecomputesFromLastCheckpoint(t *testing.T) {
	cfg := baseConfig()
	cfg.CheckpointEvery = 3
	cfg.Plan.CrashAtStep = map[int]int{1: 5}
	res := runElastic(t, cfg)

	ev := res.Events[0]
	if ev.ResumeStep != 3 || ev.StepsLost != 2 {
		t.Fatalf("crash event %+v, want resume at step 3 (cadence 3) with 2 steps lost", ev)
	}
	requireAllLossesRecorded(t, res)
}

// Killing rank 0 — the default negotiation leader — must elect the next
// live rank to coordinate the verdict.
func TestElasticRankDownLeaderElectsSuccessor(t *testing.T) {
	cfg := baseConfig()
	cfg.Plan.CrashAtStep = map[int]int{0: 2}
	res := runElastic(t, cfg)

	if res.Incarnations != 2 || len(res.Events) != 1 {
		t.Fatalf("incarnations=%d events=%+v, want one recovery", res.Incarnations, res.Events)
	}
	if ev := res.Events[0]; ev.Identity != 0 || ev.NewWorld != 3 {
		t.Fatalf("crash event %+v, want identity 0 shrinking to world 3", ev)
	}
	requireAllLossesRecorded(t, res)
}

// A crashed identity scheduled to rejoin grows the world back through the
// same resize path a crash shrinks it with.
func TestElasticRejoinGrowsWorldBack(t *testing.T) {
	cfg := baseConfig()
	cfg.Steps = 10
	cfg.Plan.CrashAtStep = map[int]int{1: 3}
	cfg.Plan.RejoinAtStep = map[int]int{1: 6}
	res := runElastic(t, cfg)

	if res.Incarnations != 3 || len(res.Events) != 2 {
		t.Fatalf("incarnations=%d events=%+v, want crash then rejoin", res.Incarnations, res.Events)
	}
	crash, rejoin := res.Events[0], res.Events[1]
	if crash.Kind != KindCrash || crash.NewWorld != 3 {
		t.Fatalf("first event %+v, want a crash shrinking to 3", crash)
	}
	if rejoin.Kind != KindRejoin || rejoin.Identity != 1 || rejoin.Step != 6 ||
		rejoin.OldWorld != 3 || rejoin.NewWorld != 4 {
		t.Fatalf("second event %+v, want identity 1 rejoining at step 6 growing 3→4", rejoin)
	}
	if rejoin.ResumeStep != 6 || rejoin.StepsLost != 0 {
		t.Fatalf("rejoin event %+v, want a fresh boundary checkpoint at step 6", rejoin)
	}
	if rejoin.RecoverySec <= 0 {
		t.Fatalf("rejoin recovery latency %v, want > 0", rejoin.RecoverySec)
	}
	requireAllLossesRecorded(t, res)
}

// A two-rank world losing one rank must finish solo: the collectives
// degenerate cleanly at world size 1.
func TestElasticResizeToSingleRank(t *testing.T) {
	cfg := baseConfig()
	cfg.Identities = 2
	cfg.Steps = 5
	cfg.Plan.CrashAtStep = map[int]int{1: 2}
	res := runElastic(t, cfg)

	if ev := res.Events[0]; ev.NewWorld != 1 {
		t.Fatalf("crash event %+v, want world shrinking to 1", ev)
	}
	requireAllLossesRecorded(t, res)
}

// The replicated (non-sharded) engine recovers through the same protocol;
// its checkpoint capture is purely local.
func TestElasticReplicatedModeRecovers(t *testing.T) {
	cfg := baseConfig()
	cfg.Learner.ShardOptimizer = false
	cfg.Plan.CrashAtStep = map[int]int{3: 4}
	res := runElastic(t, cfg)

	if res.Incarnations != 2 || res.Events[0].Identity != 3 {
		t.Fatalf("incarnations=%d events=%+v, want one recovery of identity 3", res.Incarnations, res.Events)
	}
	requireAllLossesRecorded(t, res)
}

// Multi-device ranks resize like single-device ones; the global batch
// re-splits across ranks × devices at the new world size.
func TestElasticFaultRecoveryMultiDevice(t *testing.T) {
	cfg := baseConfig()
	cfg.DevicesPerNode = 2
	cfg.GlobalBatch = 24
	cfg.Plan.CrashAtStep = map[int]int{2: 3}
	res := runElastic(t, cfg)

	if res.Incarnations != 2 || res.Events[0].NewWorld != 3 {
		t.Fatalf("incarnations=%d events=%+v, want one shrink to 3 ranks", res.Incarnations, res.Events)
	}
	requireAllLossesRecorded(t, res)
}

// Two identical elastic runs — same seed, same faults — must produce
// identical loss trajectories: the fault injection, batch dealing, and
// recovery protocol are all deterministic.
func TestElasticChaosRunsAreDeterministic(t *testing.T) {
	make2 := func() *Result {
		cfg := baseConfig()
		cfg.Steps = 10
		cfg.Plan.CrashAtStep = map[int]int{2: 3}
		cfg.Plan.RejoinAtStep = map[int]int{2: 7}
		return runElastic(t, cfg)
	}
	a, b := make2(), make2()
	if len(a.Losses) != len(b.Losses) {
		t.Fatalf("loss lengths differ: %d vs %d", len(a.Losses), len(b.Losses))
	}
	for s := range a.Losses {
		if a.Losses[s] != b.Losses[s] {
			t.Fatalf("step %d loss differs across identical runs: %v vs %v", s, a.Losses[s], b.Losses[s])
		}
	}
	if a.FinalLoss != b.FinalLoss {
		t.Fatalf("final losses differ: %v vs %v", a.FinalLoss, b.FinalLoss)
	}
}
