package sgd

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// LARS implements Layer-wise Adaptive Rate Scaling (You, Gimelshein et al.),
// the optimizer behind the 32k-batch KNL result the paper compares against
// in Table 2 (You et al. [35], "100-epoch ImageNet Training with AlexNet in
// 24 Minutes"). Each parameter tensor gets a local learning rate
//
//	local = eta · ‖w‖ / (‖g‖ + wd·‖w‖)
//
// so layers whose gradients are large relative to their weights take
// proportionally smaller steps — the mechanism that keeps very large global
// batches stable where plain momentum SGD diverges.
type LARS struct {
	cfg      Config
	eta      float32
	params   []*nn.Param
	velocity [][]float32
}

// NewLARS builds a LARS optimizer. eta is the trust coefficient (You et al.
// use 0.001-0.01; 0.001 is the common default).
func NewLARS(params []*nn.Param, cfg Config, eta float32) *LARS {
	o := &LARS{cfg: cfg, eta: eta, params: params, velocity: make([][]float32, len(params))}
	for i, p := range params {
		o.velocity[i] = make([]float32, p.Value.Len())
	}
	return o
}

// Step applies one LARS update with the given global learning rate.
// Parameters flagged NoWeightDecay skip both the decay term and the layer
// adaptation (standard practice for BN parameters and biases, whose norms
// are not scale-invariant).
func (o *LARS) Step(lr float32) {
	for i, p := range o.params {
		w := p.Value.Data
		g := p.Grad.Data
		v := o.velocity[i]
		m := o.cfg.Momentum
		wd := o.cfg.WeightDecay
		local := float32(1)
		if !p.NoWeightDecay {
			var wNorm, gNorm float64
			for j := range w {
				wNorm += float64(w[j]) * float64(w[j])
				gNorm += float64(g[j]) * float64(g[j])
			}
			wn := float32(math.Sqrt(wNorm))
			gn := float32(math.Sqrt(gNorm))
			denom := gn + wd*wn
			if wn > 0 && denom > 0 {
				local = o.eta * wn / denom
			}
		} else {
			wd = 0
		}
		for j := range w {
			grad := g[j] + wd*w[j]
			v[j] = m*v[j] + lr*local*grad
			w[j] -= v[j]
		}
	}
}

// StateLen mirrors SGD.StateLen for checkpointing.
func (o *LARS) StateLen() int {
	n := 0
	for _, v := range o.velocity {
		n += len(v)
	}
	return n
}

// ExportState copies the momentum buffers into dst (checkpointing).
func (o *LARS) ExportState(dst []float32) error {
	off := 0
	for _, v := range o.velocity {
		if off+len(v) > len(dst) {
			return fmt.Errorf("sgd: LARS ExportState dst too small")
		}
		copy(dst[off:], v)
		off += len(v)
	}
	if off != len(dst) {
		return fmt.Errorf("sgd: LARS ExportState dst size %d, want %d", len(dst), off)
	}
	return nil
}

// ImportState restores momentum buffers written by ExportState.
func (o *LARS) ImportState(src []float32) error {
	off := 0
	for _, v := range o.velocity {
		if off+len(v) > len(src) {
			return fmt.Errorf("sgd: LARS ImportState src too small")
		}
		copy(v, src[off:off+len(v)])
		off += len(v)
	}
	if off != len(src) {
		return fmt.Errorf("sgd: LARS ImportState src size %d, want %d", len(src), off)
	}
	return nil
}
