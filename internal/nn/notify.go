package nn

import "repro/internal/tensor"

// ParamHook receives a parameter whose gradient accumulator just became
// final during a hooked backward pass: no later backward work of the same
// pass will touch p.Grad again, so the value may be read (or shipped into a
// communication pipeline) immediately.
type ParamHook func(p *Param)

// GradNotifier is a container layer whose backward pass can report per-
// parameter gradient readiness. Containers implement it by recursing through
// their children with BackwardNotify, so readiness notification reaches every
// Param in the subtree — including branching modules (residual shortcuts,
// inception paths) whose children do not finish in plain reverse order.
//
// This is the mechanism behind the reactive gradient pipeline: intra-node
// reduction and the inter-node allreduce of a parameter start while earlier
// layers are still computing backward.
type GradNotifier interface {
	Layer
	// BackwardWithGradHook is Backward plus readiness notification. It must
	// perform exactly the same arithmetic as Backward (the reactive and
	// phased training paths are asserted bitwise identical) and invoke hook
	// once per owned parameter, after that parameter's gradient is final.
	BackwardWithGradHook(gradOut *tensor.Tensor, hook ParamHook) *tensor.Tensor
}

// BackwardNotify runs l's backward pass, invoking hook as parameter
// gradients become final. Containers implementing GradNotifier propagate the
// hook to their children; for leaf layers (and any container that does not
// implement the interface) the whole layer's parameters are final when its
// Backward returns, so they are notified then. A nil hook degrades to plain
// Backward.
func BackwardNotify(l Layer, gradOut *tensor.Tensor, hook ParamHook) *tensor.Tensor {
	if n, ok := l.(GradNotifier); ok {
		return n.BackwardWithGradHook(gradOut, hook)
	}
	gradIn := l.Backward(gradOut)
	if hook != nil {
		for _, p := range l.Params() {
			hook(p)
		}
	}
	return gradIn
}
