package sgd

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func onParam(vals, grads []float32, noDecay bool) *nn.Param {
	v, _ := tensor.FromSlice(vals, len(vals))
	g, _ := tensor.FromSlice(grads, len(grads))
	return &nn.Param{Name: "p", Value: v, Grad: g, NoWeightDecay: noDecay}
}

func TestPlainSGDStep(t *testing.T) {
	p := onParam([]float32{1, 2}, []float32{0.5, -0.5}, true)
	o := New([]*nn.Param{p}, Config{Momentum: 0, WeightDecay: 0})
	o.Step(0.1)
	if math.Abs(float64(p.Value.Data[0]-0.95)) > 1e-6 || math.Abs(float64(p.Value.Data[1]-2.05)) > 1e-6 {
		t.Fatalf("after step: %v", p.Value.Data)
	}
}

func TestMomentumAccumulates(t *testing.T) {
	p := onParam([]float32{0}, []float32{1}, true)
	o := New([]*nn.Param{p}, Config{Momentum: 0.9, WeightDecay: 0})
	// v1 = 1, w = -0.1; v2 = 0.9+1 = 1.9, w = -0.1 - 0.19 = -0.29
	o.Step(0.1)
	o.Step(0.1)
	if math.Abs(float64(p.Value.Data[0]+0.29)) > 1e-6 {
		t.Fatalf("after two steps: %v, want -0.29", p.Value.Data[0])
	}
}

func TestWeightDecayAppliedUnlessFlagged(t *testing.T) {
	decayed := onParam([]float32{10}, []float32{0}, false)
	exempt := onParam([]float32{10}, []float32{0}, true)
	o := New([]*nn.Param{decayed, exempt}, Config{Momentum: 0, WeightDecay: 0.1})
	o.Step(1)
	// decayed: g = 0 + 0.1*10 = 1; w = 10 - 1 = 9.
	if math.Abs(float64(decayed.Value.Data[0]-9)) > 1e-6 {
		t.Fatalf("decayed param %v, want 9", decayed.Value.Data[0])
	}
	if exempt.Value.Data[0] != 10 {
		t.Fatalf("exempt param %v, want 10 (unchanged)", exempt.Value.Data[0])
	}
}

func TestSGDReducesQuadraticLoss(t *testing.T) {
	// Minimize f(w) = ||w - target||² with momentum SGD.
	target := []float32{3, -2, 1}
	p := onParam([]float32{0, 0, 0}, []float32{0, 0, 0}, true)
	o := New([]*nn.Param{p}, DefaultConfig())
	for i := 0; i < 200; i++ {
		for j := range target {
			p.Grad.Data[j] = 2 * (p.Value.Data[j] - target[j])
		}
		o.Step(0.05)
	}
	for j := range target {
		if math.Abs(float64(p.Value.Data[j]-target[j])) > 1e-2 {
			t.Fatalf("w[%d] = %v, want %v", j, p.Value.Data[j], target[j])
		}
	}
}

func TestWarmupStepSchedule(t *testing.T) {
	s := WarmupStep{Base: 0.1, Peak: 3.2, WarmupEpochs: 5, DropEvery: 30, DropFactor: 0.1}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.LR(0); got != 0.1 {
		t.Fatalf("LR(0) = %v, want 0.1", got)
	}
	if got := s.LR(2.5); math.Abs(got-(0.1+3.1/2)) > 1e-9 {
		t.Fatalf("LR(2.5) = %v, want midpoint", got)
	}
	if got := s.LR(5); got != 3.2 {
		t.Fatalf("LR(5) = %v, want peak 3.2", got)
	}
	if got := s.LR(29.99); got != 3.2 {
		t.Fatalf("LR(29.99) = %v, want 3.2", got)
	}
	if got := s.LR(30); math.Abs(got-0.32) > 1e-9 {
		t.Fatalf("LR(30) = %v, want 0.32", got)
	}
	if got := s.LR(65); math.Abs(got-0.032) > 1e-9 {
		t.Fatalf("LR(65) = %v, want 0.032", got)
	}
	if got := s.LR(-1); got != 0.1 {
		t.Fatalf("LR(-1) = %v, want clamp to base", got)
	}
}

func TestGoyalScheduleMatchesPaper(t *testing.T) {
	// Paper Table 2 configuration: batch 32/GPU × 256 GPUs = 8k global.
	s := Goyal(32, 256)
	if math.Abs(s.Peak-3.2) > 1e-9 {
		t.Fatalf("peak = %v, want 3.2 (0.1·8192/256)", s.Peak)
	}
	// Section 5 default: batch 64/GPU.
	s64 := Goyal(64, 128)
	if math.Abs(s64.Peak-3.2) > 1e-9 {
		t.Fatalf("peak = %v, want 3.2", s64.Peak)
	}
}

func TestConstSchedule(t *testing.T) {
	if Const(0.01).LR(57) != 0.01 {
		t.Fatal("const schedule should ignore epoch")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	if err := (WarmupStep{Base: 0, Peak: 1, DropFactor: 0.1}).Validate(); err == nil {
		t.Fatal("zero base should fail")
	}
	if err := (WarmupStep{Base: 0.1, Peak: 1, DropFactor: 1.5}).Validate(); err == nil {
		t.Fatal("drop factor > 1 should fail")
	}
}

func TestTwoReplicasStayInSyncUnderIdenticalUpdates(t *testing.T) {
	// The Algorithm 1 invariant the trainer relies on: identical initial
	// weights + identical gradient streams => identical weights forever.
	a := onParam([]float32{1, 2, 3}, []float32{0, 0, 0}, false)
	b := onParam([]float32{1, 2, 3}, []float32{0, 0, 0}, false)
	oa := New([]*nn.Param{a}, DefaultConfig())
	ob := New([]*nn.Param{b}, DefaultConfig())
	rng := tensor.NewRNG(3)
	for i := 0; i < 50; i++ {
		for j := 0; j < 3; j++ {
			g := rng.Float32() - 0.5
			a.Grad.Data[j] = g
			b.Grad.Data[j] = g
		}
		lr := float32(0.01 + 0.001*float64(i%7))
		oa.Step(lr)
		ob.Step(lr)
	}
	for j := 0; j < 3; j++ {
		if a.Value.Data[j] != b.Value.Data[j] {
			t.Fatalf("replicas diverged at %d: %v vs %v", j, a.Value.Data[j], b.Value.Data[j])
		}
	}
}

// TestStepParamMatchesStep: updating parameters one at a time in any order
// must be bitwise identical to a full Step — the invariant the reactive
// pipeline's per-bucket updates rely on.
func TestStepParamMatchesStep(t *testing.T) {
	build := func() []*nn.Param {
		return []*nn.Param{
			onParam([]float32{1, -2, 3}, []float32{0.5, 0.25, -0.125}, false),
			onParam([]float32{0.5}, []float32{-1}, true),
			onParam([]float32{-4, 4}, []float32{2, -2}, false),
		}
	}
	full := build()
	piecewise := build()
	of := New(full, DefaultConfig())
	op := New(piecewise, DefaultConfig())
	for step := 0; step < 3; step++ {
		of.Step(0.1)
		// Reverse order, as buckets land back-to-front during backward.
		for i := len(piecewise) - 1; i >= 0; i-- {
			op.StepParam(i, 0.1)
		}
	}
	for i := range full {
		for j := range full[i].Value.Data {
			if full[i].Value.Data[j] != piecewise[i].Value.Data[j] {
				t.Fatalf("param %d value[%d]: full %v, piecewise %v",
					i, j, full[i].Value.Data[j], piecewise[i].Value.Data[j])
			}
		}
	}
}
