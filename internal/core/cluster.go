package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/allreduce"
	"repro/internal/dimd"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// ClusterConfig describes a full in-process training job: N learners on an
// mpi.World, each with m device replicas, a data source, and the Algorithm 1
// loop with optional periodic DIMD shuffles.
type ClusterConfig struct {
	Learners       int
	DevicesPerNode int
	// NewReplica builds one model replica; called Learners×DevicesPerNode
	// times with distinct seeds (weights are then synced from rank 0).
	NewReplica func(seed int64) nn.Layer
	// NewSource builds learner rank's batch source.
	NewSource func(rank int) BatchSource
	// Stores, when non-nil, gives learner rank's DIMD store so the loop can
	// run the periodic shuffle (paper Section 4.1); ShuffleEvery controls
	// the cadence in steps (0 disables).
	Stores       func(rank int) *dimd.Store
	ShuffleEvery int
	// ShuffleGroups splits learners into this many shuffle groups (0 or 1 =
	// one global group).
	ShuffleGroups          int
	Steps                  int
	InputC, InputH, InputW int
	Learner                Config
	// NewWorld, when non-nil, builds the in-process MPI world (e.g.
	// mpi.NewLatencyWorld for comm-heavy overlap experiments). Defaults to
	// mpi.NewWorld.
	NewWorld func(ranks int) *mpi.World
	// Eval, when non-nil, is called on learner 0 every EvalEvery steps with
	// the current learner; use it to record accuracy curves.
	Eval      func(step int, l *Learner)
	EvalEvery int
}

// ClusterResult aggregates a run.
type ClusterResult struct {
	// Losses[r][t] is learner r's local loss at step t.
	Losses [][]float64
	// FinalWeights[r] is learner r's flattened final model.
	FinalWeights [][]float32
	// Phases[r] is learner r's cumulative per-phase wall time.
	Phases []PhaseTimes
	// CommStats[r] is learner r's cumulative compressed-allreduce traffic
	// (all zero when the run used the uncompressed path).
	CommStats []allreduce.CompressedStats
	// OptStateBytes[r] is learner r's resident optimizer (momentum) state in
	// bytes: a full replica per device normally, one parameter shard under
	// Config.ShardOptimizer.
	OptStateBytes []int64
	// ParamAGBytes[r] is learner r's cumulative parameter-allgather wire
	// bytes (send+recv) — the traffic the sharded step adds in exchange for
	// the owner-routed gradient reduce-scatter; zero when sharding is off.
	ParamAGBytes []int64
}

// RunCluster executes the job on an in-process world and returns per-step
// losses and final weights. It is the harness behind the functional
// experiments (accuracy invariance, serial-vs-distributed equivalence) and
// the quickstart example.
func RunCluster(cfg ClusterConfig) (*ClusterResult, error) {
	if cfg.Learners <= 0 || cfg.DevicesPerNode <= 0 {
		return nil, fmt.Errorf("core: invalid cluster %d×%d", cfg.Learners, cfg.DevicesPerNode)
	}
	newWorld := cfg.NewWorld
	if newWorld == nil {
		newWorld = mpi.NewWorld
	}
	world := newWorld(cfg.Learners)
	defer world.Close()
	res := &ClusterResult{
		Losses:        make([][]float64, cfg.Learners),
		FinalWeights:  make([][]float32, cfg.Learners),
		Phases:        make([]PhaseTimes, cfg.Learners),
		CommStats:     make([]allreduce.CompressedStats, cfg.Learners),
		OptStateBytes: make([]int64, cfg.Learners),
		ParamAGBytes:  make([]int64, cfg.Learners),
	}
	var mu sync.Mutex
	err := world.Run(func(c *mpi.Comm) error {
		rank := c.Rank()
		replicas := make([]nn.Layer, cfg.DevicesPerNode)
		for d := range replicas {
			replicas[d] = cfg.NewReplica(int64(rank*cfg.DevicesPerNode + d + 1))
		}
		l, err := NewLearner(c, replicas, cfg.NewSource(rank), cfg.InputC, cfg.InputH, cfg.InputW, cfg.Learner)
		if err != nil {
			return err
		}
		defer l.Close()

		var shuffleComm *mpi.Comm
		if cfg.Stores != nil && cfg.ShuffleEvery > 0 {
			groups := cfg.ShuffleGroups
			if groups <= 0 {
				groups = 1
			}
			ranks, err := dimd.GroupRanks(c.Size(), groups, rank)
			if err != nil {
				return err
			}
			shuffleComm, err = c.Sub(ranks)
			if err != nil {
				return err
			}
		}

		losses := make([]float64, 0, cfg.Steps)
		for t := 0; t < cfg.Steps; t++ {
			if shuffleComm != nil && t > 0 && t%cfg.ShuffleEvery == 0 {
				if err := cfg.Stores(rank).Shuffle(shuffleComm, dimd.ShuffleOptions{Seed: int64(t)}); err != nil {
					return fmt.Errorf("core: shuffle at step %d: %w", t, err)
				}
			}
			loss, err := l.Step()
			if err != nil {
				return fmt.Errorf("core: rank %d step %d: %w", rank, t, err)
			}
			losses = append(losses, loss)
			if cfg.Eval != nil && rank == 0 && cfg.EvalEvery > 0 && (t+1)%cfg.EvalEvery == 0 {
				cfg.Eval(t+1, l)
			}
		}
		w, err := l.FlatWeights()
		if err != nil {
			return err
		}
		mu.Lock()
		res.Losses[rank] = losses
		res.FinalWeights[rank] = w
		res.Phases[rank] = l.Phases()
		res.CommStats[rank] = l.CommStats()
		res.OptStateBytes[rank] = l.OptimizerStateBytes()
		res.ParamAGBytes[rank] = l.ParamAllGatherBytes()
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// SmallBNFreeCNN builds the batch-norm-free reference CNN shared by the
// functional experiments, the benchtool compression workload, and the
// compressed example. BN computes statistics per device partition, so
// cross-configuration comparisons (serial vs distributed, codec vs codec)
// need a BN-free model; keeping one definition keeps those runs comparable.
func SmallBNFreeCNN(classes, size int, seed int64) nn.Layer {
	rng := tensor.NewRNG(seed)
	final := size / 2
	return nn.NewSequential("bnfree",
		nn.NewConv2D("c1", 3, 6, 3, 3, 1, 1, 1, 1, nn.ConvOpts{Bias: true}, rng),
		nn.NewReLU("r1"),
		nn.NewMaxPool2D("p1", 2, 2, 2, 2, 0, 0),
		nn.NewFlatten("fl"),
		nn.NewLinear("fc", 6*final*final, classes, rng),
	)
}

// OverlapBenchModel builds the BN-free two-conv CNN shared by the overlap
// drivers (benchtool's overlap workload, the root overlap benchmark, and
// examples/overlap): enough conv compute that backward takes real time per
// layer — giving the reactive pipeline something to hide communication
// under — while the fc layer holds most of the parameters, so the bulk of
// the gradient becomes ready at the very start of backward. One definition
// keeps the three drivers' reported numbers comparable.
func OverlapBenchModel(classes, size int, seed int64) nn.Layer {
	rng := tensor.NewRNG(seed)
	final := size / 4
	return nn.NewSequential("overlapcnn",
		nn.NewConv2D("c1", 3, 8, 3, 3, 1, 1, 1, 1, nn.ConvOpts{Bias: true}, rng),
		nn.NewReLU("r1"),
		nn.NewMaxPool2D("p1", 2, 2, 2, 2, 0, 0),
		nn.NewConv2D("c2", 8, 16, 3, 3, 1, 1, 1, 1, nn.ConvOpts{Bias: true}, rng),
		nn.NewReLU("r2"),
		nn.NewMaxPool2D("p2", 2, 2, 2, 2, 0, 0),
		nn.NewFlatten("fl"),
		nn.NewLinear("fc", 16*final*final, classes, rng),
	)
}

// AllocBenchModel builds the parameter-heavy, compute-light MLP behind
// benchtool's -allocs workload: the ~400k-float gradient dwarfs the few
// dense-layer activations, so per-step allocation counts measure the
// communication hot path (bucketing, codecs, transport) rather than conv
// compute. Shared so the committed BENCH_alloc.json baseline and any local
// rerun measure the same model.
func AllocBenchModel(classes, size int, seed int64) nn.Layer {
	rng := tensor.NewRNG(seed)
	in := 3 * size * size
	return nn.NewSequential("allocmlp",
		nn.NewFlatten("fl"),
		nn.NewLinear("fc1", in, 384, rng),
		nn.NewReLU("r1"),
		nn.NewLinear("fc2", 384, 256, rng),
		nn.NewReLU("r2"),
		nn.NewLinear("fc3", 256, classes, rng),
	)
}

// ShardBenchModel builds the many-equal-layer MLP behind benchtool's -shard
// workload. Its parameter mass is spread over ten same-sized 192×192 dense
// layers (the input is flattened to 192 at size 8, so the first layer is no
// bigger than the rest) — whole-parameter contiguous shards therefore
// balance across ranks, and per-rank optimizer-state bytes genuinely scale
// as ~1/world-size, which is the quantity the shard workload measures. A
// model dominated by one giant tensor (AllocBenchModel's fc1) cannot show
// that scaling however the shards are cut.
func ShardBenchModel(classes, size int, seed int64) nn.Layer {
	rng := tensor.NewRNG(seed)
	const width = 192
	in := 3 * size * size
	layers := []nn.Layer{nn.NewFlatten("fl"), nn.NewLinear("fc0", in, width, rng), nn.NewReLU("r0")}
	for i := 1; i <= 9; i++ {
		layers = append(layers,
			nn.NewLinear(fmt.Sprintf("fc%d", i), width, width, rng),
			nn.NewReLU(fmt.Sprintf("r%d", i)))
	}
	layers = append(layers, nn.NewLinear("out", width, classes, rng))
	return nn.NewSequential("shardmlp", layers...)
}

// SyntheticTensorData materializes a deterministic labelled dataset of n
// size×size RGB images directly as tensors (bypassing the codec) for fast
// functional experiments: class-dependent blob patterns a small CNN can
// learn, generated identically on every rank from the seed.
func SyntheticTensorData(n, classes, size int, seed int64) (*tensor.Tensor, []int) {
	rng := tensor.NewRNG(seed)
	x := tensor.New(n, 3, size, size)
	labels := make([]int, n)
	plane := size * size
	for i := 0; i < n; i++ {
		class := i % classes
		labels[i] = class
		classRng := tensor.NewRNG(seed*7919 + int64(class))
		cx := classRng.Float64()*float64(size-4) + 2
		cy := classRng.Float64()*float64(size-4) + 2
		amp := 0.5 + classRng.Float64()
		for ch := 0; ch < 3; ch++ {
			chScale := float32(0.3 + 0.35*float64(ch)*classRng.Float64())
			base := i*3*plane + ch*plane
			for y := 0; y < size; y++ {
				for xx := 0; xx < size; xx++ {
					dx := float64(xx) - cx
					dy := float64(y) - cy
					v := amp * gauss(dx, dy, float64(size)/4)
					noise := (rng.Float64() - 0.5) * 0.3
					x.Data[base+y*size+xx] = chScale*float32(v) + float32(noise)
				}
			}
		}
	}
	return x, labels
}

func gauss(dx, dy, s float64) float64 {
	r2 := (dx*dx + dy*dy) / (2 * s * s)
	if r2 > 30 { // clamp: exp underflows to denormals beyond this
		return 0
	}
	return math.Exp(-r2)
}
