// Package kernels provides the shared persistent worker pool behind the
// compute hot paths (GEMM tiles, conv batch chunks, pooling/normalization
// loops). One pool serves the whole process: device goroutines, the
// reactive pipeline, and nested kernel calls all dispatch onto the same
// fixed set of workers instead of spawning goroutines per call.
//
// Design rules:
//
//   - Fork-join with caller participation. Run publishes a job to the idle
//     workers and then executes task indices itself until none remain, so a
//     Run issued from inside another Run's task (nested parallelism — a
//     conv batch chunk calling Gemm) always makes progress even when every
//     worker is busy: the nested caller simply computes its own tiles
//     inline. No Run can deadlock waiting for a worker.
//
//   - Determinism is the caller's contract, made easy: tasks must write
//     disjoint output ranges (then any schedule is bitwise-deterministic),
//     or accumulate into per-chunk partial buffers over a partition that
//     does NOT depend on the worker count — GradChunks is that fixed
//     partition rule — and fold the partials in chunk order afterwards.
//     Which goroutine runs which index is scheduling noise either way.
//
//   - Steady state allocates one closure per Run; job descriptors recycle
//     through a sync.Pool, so kernel dispatch stays compatible with the
//     allocation gate on the training hot path.
package kernels

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers caps the pool size; beyond this the scalar kernels are memory-
// bound and extra goroutines only add fork-join latency.
const maxWorkers = 64

// gradChunkCap is the fixed upper bound on GradChunks partitions. It is a
// constant — never derived from the worker count — so gradient folds are
// bitwise identical whether the pool runs 1-wide or GOMAXPROCS-wide.
const gradChunkCap = 16

// pool is the process-wide worker set, started on first use. The parked
// goroutine count is fixed at maxWorkers-1 (idle workers cost a few KiB of
// stack each and no CPU); how many of them a Run actually enlists is the
// separate, adjustable width below — so raising GOMAXPROCS after startup
// (benchtool's -procs sweep) still widens the kernels.
var (
	poolOnce sync.Once
	poolJobs chan *job

	// width is the active parallelism target (helpers offered a job + the
	// caller). Zero means "track GOMAXPROCS"; SetWorkers pins it for
	// single-worker baselines and the worker-count equivalence tests.
	width atomic.Int64
)

func startPool() {
	// maxWorkers-1 helpers: the caller always participates, so the caller
	// plus helpers saturate maxWorkers lanes.
	poolJobs = make(chan *job, maxWorkers)
	for i := 1; i < maxWorkers; i++ {
		go func() {
			for j := range poolJobs {
				j.run()
				j.release()
			}
		}()
	}
}

// curWidth resolves the active width: an explicit SetWorkers pin, otherwise
// the live GOMAXPROCS (clamped to maxWorkers).
func curWidth() int {
	if w := width.Load(); w > 0 {
		return int(w)
	}
	w := runtime.GOMAXPROCS(0)
	if w > maxWorkers {
		w = maxWorkers
	}
	return w
}

// Workers reports the current parallelism width (including the caller).
func Workers() int {
	poolOnce.Do(startPool)
	return curWidth()
}

// SetWorkers pins the parallelism width (clamped to [1, 64]) and returns
// the previous effective value. It exists for the single-worker benchmark
// baseline and the worker-count equivalence tests; the persistent workers
// keep running — a width of 1 simply stops offering them jobs, so every Run
// executes entirely on its caller. SetWorkers(0) releases the pin back to
// tracking GOMAXPROCS.
func SetWorkers(n int) int {
	poolOnce.Do(startPool)
	prev := curWidth()
	if n < 0 {
		n = 0
	}
	if n > maxWorkers {
		n = maxWorkers
	}
	width.Store(int64(n))
	return prev
}

// job is one Run invocation: tasks [0, n) claimed by atomic counter, with a
// countdown the caller waits on. refs tracks the goroutines that may touch
// the job (claimers), so descriptors recycle only after the last one exits.
type job struct {
	fn   func(int)
	n    int64
	next atomic.Int64
	left atomic.Int64 // unfinished tasks
	refs atomic.Int64 // goroutines still inside run()
	wake chan struct{}
}

var jobPool = sync.Pool{New: func() any { return &job{wake: make(chan struct{}, 1)} }}

// run claims and executes task indices until none remain.
func (j *job) run() {
	fn, n := j.fn, j.n
	for {
		i := j.next.Add(1) - 1
		if i >= n {
			return
		}
		fn(int(i))
		if j.left.Add(-1) == 0 {
			select {
			case j.wake <- struct{}{}:
			default:
			}
		}
	}
}

// release drops a claimer reference, returning the descriptor to the pool
// once the caller and every helper are done with it.
func (j *job) release() {
	if j.refs.Add(-1) == 0 {
		j.fn = nil
		jobPool.Put(j)
	}
}

// Run executes fn(i) for every i in [0, n), distributing indices across the
// pool. It returns only after all n calls have completed. fn must be safe
// for concurrent invocation with distinct i; Run gives no ordering guarantee
// between indices. Calling Run from inside a task is legal (the nested call
// runs inline on busy pools).
func Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	poolOnce.Do(startPool)
	w := curWidth()
	if n == 1 || w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	helpers := w - 1 // the caller is the w-th lane
	if helpers > n-1 {
		helpers = n - 1
	}
	j := jobPool.Get().(*job)
	j.fn, j.n = fn, int64(n)
	j.next.Store(0)
	j.left.Store(int64(n))
	select {
	case <-j.wake: // drain a stale wakeup from a prior use
	default:
	}
	j.refs.Store(1) // the caller's reference
	for i := 0; i < helpers; i++ {
		// The ref is taken BEFORE the send: a helper may receive, run, and
		// release before this loop's next iteration.
		j.refs.Add(1)
		select {
		case poolJobs <- j:
		default:
			// Pool saturated (nested or concurrent Runs): don't block —
			// the caller and already-enlisted helpers cover the tasks.
			j.refs.Add(-1)
			i = helpers
		}
	}
	j.run()
	// Helpers may still be finishing claimed tasks; wait for the count.
	for j.left.Load() != 0 {
		<-j.wake
	}
	j.release()
}

// chunkBounds returns the [lo, hi) bounds of chunk i when total items are
// split into chunks nearly-equal contiguous pieces (the first total%chunks
// chunks get one extra item).
func chunkBounds(total, chunks, i int) (lo, hi int) {
	base := total / chunks
	rem := total % chunks
	lo = i*base + minInt(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// RunChunks splits [0, total) into exactly chunks contiguous ranges and
// executes fn(chunk, lo, hi) for each on the pool. Use with a fixed chunk
// count (GradChunks) when fn accumulates into per-chunk partials; chunk
// ranges are a pure function of (total, chunks), never of the worker count.
func RunChunks(total, chunks int, fn func(chunk, lo, hi int)) {
	if total <= 0 || chunks <= 0 {
		return
	}
	if chunks > total {
		chunks = total
	}
	Run(chunks, func(c int) {
		lo, hi := chunkBounds(total, chunks, c)
		fn(c, lo, hi)
	})
}

// RunRange splits [0, total) into contiguous ranges of at least grain items
// and executes fn(lo, hi) for each. For elementwise kernels only: fn must
// write disjoint outputs with no cross-range reduction, so the (worker-count
// -dependent) range boundaries cannot affect results.
func RunRange(total, grain int, fn func(lo, hi int)) {
	if total <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := Workers()
	if max := (total + grain - 1) / grain; chunks > max {
		chunks = max
	}
	if chunks <= 1 {
		fn(0, total)
		return
	}
	Run(chunks, func(c int) {
		lo, hi := chunkBounds(total, chunks, c)
		fn(lo, hi)
	})
}

// GradChunks is the fixed batch-partition rule for deterministic parallel
// gradient accumulation: n items fold through min(n, 16) per-chunk partial
// buffers, combined in chunk order. The count depends only on n — never on
// GOMAXPROCS or SetWorkers — which is what keeps weight gradients bitwise
// identical across worker counts (the repo-wide determinism invariant).
func GradChunks(n int) int {
	if n < gradChunkCap {
		if n < 1 {
			return 1
		}
		return n
	}
	return gradChunkCap
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
