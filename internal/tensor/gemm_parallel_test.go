package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/kernels"
)

// gemmSerial is the plain three-loop reference kernel — the pre-pool Gemm
// semantics, kept here so the tiled/pooled implementation is checked against
// independent arithmetic, not against itself.
func gemmSerial(transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	for i := 0; i < m; i++ {
		row := c[i*n : (i+1)*n]
		if beta == 0 {
			for j := range row {
				row[j] = 0
			}
		} else if beta != 1 {
			for j := range row {
				row[j] *= beta
			}
		}
	}
	if k == 0 || alpha == 0 {
		return
	}
	at := func(i, p int) float32 {
		if transA {
			return a[p*m+i]
		}
		return a[i*k+p]
	}
	bt := func(p, j int) float32 {
		if transB {
			return b[j*k+p]
		}
		return b[p*n+j]
	}
	for i := 0; i < m; i++ {
		if !transB {
			// Serial kernel order for the B-row-major cases: accumulate
			// C[i,:] += alpha*A[i,p] * B[p,:] over p.
			for p := 0; p < k; p++ {
				s := alpha * at(i, p)
				if s == 0 {
					continue
				}
				for j := 0; j < n; j++ {
					c[i*n+j] += s * bt(p, j)
				}
			}
		} else {
			// Dot-product order for the transposed-B cases.
			for j := 0; j < n; j++ {
				var s float32
				for p := 0; p < k; p++ {
					s += at(i, p) * bt(p, j)
				}
				c[i*n+j] += alpha * s
			}
		}
	}
}

// TestGemmBitwiseAcrossWorkerCounts: the pooled, 2-D-tiled Gemm must produce
// bitwise-identical C at every worker width, for all four transpose cases
// and for the awkward shapes (short-and-wide conv GEMMs, tall-thin, tiny),
// and must match the serial reference kernel exactly.
func TestGemmBitwiseAcrossWorkerCounts(t *testing.T) {
	widths := []int{1, 2, runtime.GOMAXPROCS(0) + 3}
	shapes := []struct{ m, n, k int }{
		{1, 1, 1},
		{3, 5, 7},
		{8, 2048, 27},  // conv forward: outC × outH*outW, short and wide
		{512, 64, 128}, // tall
		{64, 64, 0},    // pure beta pass
		{17, 333, 19},
	}
	rng := rand.New(rand.NewSource(7))
	for _, sh := range shapes {
		for _, transA := range []bool{false, true} {
			for _, transB := range []bool{false, true} {
				for _, alpha := range []float32{1, 0.5} {
					for _, beta := range []float32{0, 1, 0.25} {
						a := randSlice(rng, sh.m*sh.k)
						b := randSlice(rng, sh.k*sh.n)
						c0 := randSlice(rng, sh.m*sh.n)

						want := append([]float32(nil), c0...)
						gemmSerial(transA, transB, sh.m, sh.n, sh.k, alpha, a, b, beta, want)

						for _, w := range widths {
							prev := kernels.SetWorkers(w)
							got := append([]float32(nil), c0...)
							Gemm(transA, transB, sh.m, sh.n, sh.k, alpha, a, b, beta, got)
							kernels.SetWorkers(prev)
							for i := range got {
								if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
									t.Fatalf("m%d n%d k%d tA%v tB%v alpha%v beta%v width %d: elem %d = %v, want %v",
										sh.m, sh.n, sh.k, transA, transB, alpha, beta, w, i, got[i], want[i])
								}
							}
						}
					}
				}
			}
		}
	}
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = rng.Float32()*2 - 1
	}
	return s
}
