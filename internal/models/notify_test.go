package models

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// TestGradNotifyReachesBranchParams is the regression test for hook
// propagation through non-Sequential containers: a hooked backward over
// models with residual shortcuts (TinyResNet) and inception branches
// (TinyInception) must notify every nn.Param exactly once, with the gradient
// already final at notification time. The old child-granularity
// Sequential-only hook never descended into these blocks.
func TestGradNotifyReachesBranchParams(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(rng *tensor.RNG) nn.Layer
		size  int
	}{
		{"tinyresnet", func(rng *tensor.RNG) nn.Layer { return NewTinyResNet(3, 1, rng) }, 8},
		{"tinyinception", func(rng *tensor.RNG) nn.Layer { return NewTinyInception(3, rng) }, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := tensor.NewRNG(11)
			model := tc.build(rng)
			x := tensor.New(2, 3, tc.size, tc.size)
			rng.FillNormal(x, 0, 1)
			out := model.Forward(x, true)
			gradOut := tensor.New(out.Shape()...)
			rng.FillNormal(gradOut, 0, 1)

			nn.ZeroGrads(model.Params())
			seen := make(map[*nn.Param]int)
			snapshots := make(map[*nn.Param][]float32)
			nn.BackwardNotify(model, gradOut, func(p *nn.Param) {
				seen[p]++
				snapshots[p] = append([]float32(nil), p.Grad.Data...)
			})

			params := model.Params()
			if len(params) == 0 {
				t.Fatal("model has no params")
			}
			for _, p := range params {
				if seen[p] != 1 {
					t.Errorf("param %s notified %d times, want exactly 1", p.Name, seen[p])
				}
			}
			if len(seen) != len(params) {
				t.Fatalf("notified %d distinct params, model has %d", len(seen), len(params))
			}
			// Finality: the gradient at notification time must equal the
			// gradient after the whole backward pass.
			for p, snap := range snapshots {
				for i, v := range p.Grad.Data {
					if snap[i] != v {
						t.Fatalf("param %s grad[%d] changed after notification: %v -> %v",
							p.Name, i, snap[i], v)
					}
				}
			}
		})
	}
}

// TestGradNotifyMatchesPlainBackward: the hooked backward must perform
// identical arithmetic to the plain one — same input gradient, bitwise-equal
// parameter gradients — since the reactive pipeline's equivalence guarantee
// rests on it.
func TestGradNotifyMatchesPlainBackward(t *testing.T) {
	build := func() (nn.Layer, *tensor.Tensor, *tensor.Tensor) {
		rng := tensor.NewRNG(29)
		m := NewTinyResNet(2, 1, rng)
		x := tensor.New(2, 3, 8, 8)
		rng.FillNormal(x, 0, 1)
		out := m.Forward(x, true)
		g := tensor.New(out.Shape()...)
		rng.FillNormal(g, 0, 1)
		return m, g, x
	}
	m1, g1, _ := build()
	m2, g2, _ := build()
	nn.ZeroGrads(m1.Params())
	nn.ZeroGrads(m2.Params())
	in1 := m1.Backward(g1)
	in2 := nn.BackwardNotify(m2, g2, func(p *nn.Param) {})
	if !in1.ApproxEqual(in2, 0) {
		t.Fatal("input gradients differ between plain and hooked backward")
	}
	p1, p2 := m1.Params(), m2.Params()
	for i := range p1 {
		for j := range p1[i].Grad.Data {
			if p1[i].Grad.Data[j] != p2[i].Grad.Data[j] {
				t.Fatalf("param %s grad[%d] differs", p1[i].Name, j)
			}
		}
	}
}
