package allreduce

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/mpi"
)

// StreamOptions tunes a Stream.
type StreamOptions struct {
	// MaxInFlight caps the number of buckets simultaneously in the
	// compress/exchange/reduce pipeline (default 8). Submissions beyond the
	// cap block until earlier buckets complete, bounding memory and keeping
	// the reserved tag band collision-free.
	MaxInFlight int
	// SelfDecoded, when non-nil, receives the decode of this rank's own
	// payloads at [Lo:Hi) of each bucket — the values the wire actually
	// carried — which error feedback needs to compute its residual. It must
	// be long enough to index every submitted bucket's range. It is filled
	// for every submitted bucket even in reduce-scatter mode, where this
	// rank may not own (and so never sums) the bucket.
	SelfDecoded []float32
	// ShardBounds, when non-nil, switches the stream from allreduce to
	// reduce-scatter: entry r of the length Size+1, nondecreasing,
	// full-vector-covering slice is the start of rank r's owned element
	// range [ShardBounds[r], ShardBounds[r+1]). Each bucket's compressed
	// payload is sent only to the rank(s) whose shard overlaps the bucket,
	// and only those owners decode and reduce it — in rank order, so an
	// owner's Sum is bitwise identical to the full-exchange sum of the same
	// bucket. Buckets this rank does not own surface on Results with a nil
	// Sum once their sends complete.
	ShardBounds []int
}

// BucketResult is one completed bucket: the sum of every rank's decoded
// payload over the flattened-gradient range [Lo, Hi).
type BucketResult struct {
	Idx    int
	Lo, Hi int
	// Sum is the reduced bucket (length Hi-Lo), accumulated in rank order —
	// bitwise identical on every rank. The buffer is pooled: consume it and
	// call Release so the next step reuses it (dropping it is safe but
	// reintroduces the allocation). In reduce-scatter mode Sum is nil on
	// ranks whose shard does not overlap the bucket (the result then only
	// reports that the bucket's sends completed).
	Sum []float32
	// Err reports a failure for this bucket; Sum is nil when set.
	Err error
}

// Release returns Sum to the shared buffer pool. The caller must be done
// with the slice; calling Release twice or on a zero result is harmless.
func (r *BucketResult) Release() {
	mpi.PutFloats(r.Sum)
	r.Sum = nil
}

// streamSub is one submitted bucket awaiting launch.
type streamSub struct {
	idx    int
	lo, hi int
	data   []float32
}

// Stream is the asynchronous front-end over the bucketed compressed
// exchange: buckets are submitted one at a time — typically as backward
// compute finalizes their gradients — and each immediately enters the
// three-stage compress / exchange (Isend/Irecv) / decode+reduce pipeline
// while the caller keeps computing. Completed buckets surface on Results in
// launch order.
//
// Ordering contract: every rank must submit the same bucket sequence in the
// same order (the same discipline MPI imposes on collectives, and the reason
// DDP-style implementations fix their bucket launch order). With a bounded
// in-flight window, ranks launching in different orders can deadlock: each
// rank's window waits on buckets its peers have not launched because their
// windows are full of buckets this rank has not launched. Callers with
// timing-dependent readiness (the reactive gradient pipeline) must serialize
// ready buckets into an agreed order before submitting; any agreed order is
// correct — matching is by bucket tag — and the reduction is bitwise
// identical to the phased BucketedAllReduce, itself a thin wrapper over
// Stream.
//
// Usage contract: one live Stream per communicator; the consumer must drain
// Results; Submit must not be called after CloseSend. The data slice passed
// to Submit is read at compress time and must stay unmodified until the
// bucket's result arrives.
//
// Buffer discipline (the zero-allocation path): payloads are compressed into
// pooled scratch released after the sends complete; received payloads are
// pooled transport buffers released after decode; Sum buffers are pooled and
// released by the consumer via BucketResult.Release; request handles and the
// per-bucket request tables recycle through a free list sized to the
// in-flight window. Steady state allocates nothing per bucket.
type Stream struct {
	c       *mpi.Comm
	codec   compress.Codec
	opts    StreamOptions
	subs    chan streamSub
	results chan BucketResult
	slots   chan struct{}
	free    chan bucketJob // retired jobs whose request tables get reused
	done    chan struct{}
	stats   CompressedStats
	err     error
}

// NewStream starts the pipeline goroutines over c with the given codec.
func NewStream(c *mpi.Comm, codec compress.Codec, opts StreamOptions) *Stream {
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 8
	}
	// The tag band cycles mod compressedTagSpan; keeping fewer buckets in
	// flight than the span means two live buckets can never alias a tag.
	if opts.MaxInFlight >= compressedTagSpan {
		opts.MaxInFlight = compressedTagSpan - 1
	}
	if sb := opts.ShardBounds; sb != nil {
		if len(sb) != c.Size()+1 {
			panic(fmt.Sprintf("allreduce: Stream ShardBounds has %d entries for %d ranks (want size+1)", len(sb), c.Size()))
		}
		if sb[0] != 0 {
			panic(fmt.Sprintf("allreduce: Stream ShardBounds start at %d, want 0 (elements below it would never be reduced)", sb[0]))
		}
		for i := 1; i < len(sb); i++ {
			if sb[i] < sb[i-1] {
				panic(fmt.Sprintf("allreduce: Stream ShardBounds decrease at %d: %v", i, sb))
			}
		}
	}
	s := &Stream{
		c:       c,
		codec:   codec,
		opts:    opts,
		subs:    make(chan streamSub),
		results: make(chan BucketResult, opts.MaxInFlight),
		slots:   make(chan struct{}, opts.MaxInFlight),
		free:    make(chan bucketJob, opts.MaxInFlight),
		done:    make(chan struct{}),
	}
	inflight := make(chan bucketJob, opts.MaxInFlight)
	go s.launch(inflight)
	go s.reduce(inflight)
	return s
}

// Submit hands the bucket covering flattened range [lo, hi) to the pipeline.
// idx is the bucket's stable identifier (its tag), which every rank must use
// for the same range. Blocks while MaxInFlight buckets are already underway.
func (s *Stream) Submit(idx, lo, hi int, data []float32) {
	if hi-lo != len(data) {
		panic(fmt.Sprintf("allreduce: Stream.Submit bucket %d range [%d,%d) but %d floats", idx, lo, hi, len(data)))
	}
	if sb := s.opts.ShardBounds; sb != nil && hi > sb[len(sb)-1] {
		panic(fmt.Sprintf("allreduce: Stream.Submit bucket %d range [%d,%d) beyond shard layout end %d (elements above it would never be reduced)",
			idx, lo, hi, sb[len(sb)-1]))
	}
	s.subs <- streamSub{idx: idx, lo: lo, hi: hi, data: data}
}

// shardOwns reports whether rank r's shard overlaps the bucket [lo, hi).
// Empty shards own nothing — without the sb[r] < sb[r+1] guard a degenerate
// boundary point strictly inside a bucket would mark the rank an owner,
// making every peer ship it payloads for zero owned elements.
func shardOwns(sb []int, r, lo, hi int) bool {
	return sb[r] < sb[r+1] && sb[r] < hi && sb[r+1] > lo
}

// CloseSend declares that no more buckets will be submitted. Results is
// closed once every in-flight bucket has completed.
func (s *Stream) CloseSend() { close(s.subs) }

// Results returns the completed-bucket channel (closed after CloseSend once
// the pipeline drains). The consumer must drain it.
func (s *Stream) Results() <-chan BucketResult { return s.results }

// InFlight reports how many buckets currently occupy the pipeline.
func (s *Stream) InFlight() int { return len(s.slots) }

// Stats returns cumulative traffic counters and the first error. Valid only
// after Results has been closed (drained).
func (s *Stream) Stats() (CompressedStats, error) {
	<-s.done
	return s.stats, s.err
}

// launch is stage 1+2: compress each submitted bucket and start its
// non-blocking exchange, bounded by the in-flight cap. In allreduce mode the
// exchange is all-to-all; in reduce-scatter mode (ShardBounds set) sends go
// only to the bucket's shard owners and receives are posted only when this
// rank is an owner.
func (s *Stream) launch(inflight chan<- bucketJob) {
	n := s.c.Size()
	rank := s.c.Rank()
	sb := s.opts.ShardBounds
	for sub := range s.subs {
		s.slots <- struct{}{}
		var job bucketJob
		select {
		case job = <-s.free:
		default:
		}
		job.idx, job.lo, job.hi = sub.idx, sub.lo, sub.hi
		scratch := mpi.GetBytes(s.codec.MaxCompressedSize(len(sub.data)))
		job.payload = s.codec.AppendCompress(scratch[:0], sub.data)
		tag := tagCompressed + job.idx%compressedTagSpan
		if job.recvReqs == nil {
			job.recvReqs = make([]*mpi.Request, n)
		}
		job.sendReqs = job.sendReqs[:0]
		job.owned = sb == nil || shardOwns(sb, rank, job.lo, job.hi)
		for r := 0; r < n; r++ {
			if r == rank {
				continue
			}
			if sb == nil || shardOwns(sb, r, job.lo, job.hi) {
				job.sendReqs = append(job.sendReqs, s.c.Isend(r, tag, job.payload))
			}
			if job.owned {
				job.recvReqs[r] = s.c.Irecv(r, tag)
			} else {
				job.recvReqs[r] = nil
			}
		}
		inflight <- job
	}
	close(inflight)
}

// retire recycles a finished job's request tables for the next bucket.
func (s *Stream) retire(job bucketJob) {
	for i := range job.recvReqs {
		job.recvReqs[i] = nil
	}
	for i := range job.sendReqs {
		job.sendReqs[i] = nil
	}
	job.payload = nil
	select {
	case s.free <- job:
	default:
	}
}

// reduce is stage 3: decode every rank's payload in rank order, sum, and
// emit the result. Runs on its own goroutine; it alone mutates stats.
// Non-owned buckets (reduce-scatter mode) skip the reduction: they decode
// this rank's own payload for SelfDecoded, wait out the sends, and emit a
// nil-Sum result.
func (s *Stream) reduce(inflight <-chan bucketJob) {
	n := s.c.Size()
	rank := s.c.Rank()
	var tmp []float32 // decode scratch, reused across buckets (grown on demand)
	for job := range inflight {
		width := job.hi - job.lo
		if cap(tmp) < width {
			tmp = make([]float32, width)
		}
		tmp = tmp[:width]
		if !job.owned {
			s.finishUnowned(job, tmp)
			continue
		}
		// Pooled, but zeroed: accumulating into exact +0 keeps the sum
		// bitwise identical to the historical make-per-bucket path.
		sum := mpi.GetFloatsZeroed(width)
		payloadLen := len(job.payload)
		sends := len(job.sendReqs)
		var jobErr error
		for r := 0; r < n; r++ {
			if job.recvReqs[r] == nil && r != rank {
				continue
			}
			var payload []byte
			release := false
			if r == rank {
				payload = job.payload
			} else {
				req := job.recvReqs[r]
				b, err := req.Wait()
				req.Release()
				if err != nil {
					if jobErr == nil {
						jobErr = err
					}
					continue
				}
				s.stats.BytesRecv += int64(len(b))
				payload = b
				release = true
			}
			if jobErr != nil {
				if release {
					mpi.PutBytes(payload)
				}
				continue
			}
			if err := s.codec.Decompress(tmp, payload); err != nil {
				jobErr = fmt.Errorf("allreduce: bucket %d from rank %d: %w", job.idx, r, err)
			} else {
				if r == rank && s.opts.SelfDecoded != nil {
					copy(s.opts.SelfDecoded[job.lo:job.hi], tmp)
				}
				for i, v := range tmp {
					sum[i] += v
				}
			}
			if release {
				mpi.PutBytes(payload)
			}
		}
		if err := mpi.WaitAll(job.sendReqs...); err != nil && jobErr == nil {
			jobErr = err
		}
		for _, req := range job.sendReqs {
			req.Release()
		}
		// Sends have completed, so the payload buffer is quiescent.
		mpi.PutBytes(job.payload)
		s.stats.Buckets++
		res := BucketResult{Idx: job.idx, Lo: job.lo, Hi: job.hi}
		if jobErr != nil {
			if s.err == nil {
				s.err = jobErr
			}
			res.Err = jobErr
			mpi.PutFloats(sum)
		} else {
			s.stats.BytesSent += int64(payloadLen) * int64(sends)
			s.stats.RawBytes += int64(4*width) * int64(sends)
			res.Sum = sum
		}
		s.retire(job)
		s.results <- res
		<-s.slots
	}
	close(s.results)
	close(s.done)
}

// finishUnowned completes a reduce-scatter bucket this rank does not own:
// decode the rank's own payload for the error-feedback contract, wait for
// the sends to drain, account the traffic, and emit a nil-Sum result.
func (s *Stream) finishUnowned(job bucketJob, tmp []float32) {
	width := job.hi - job.lo
	var jobErr error
	if s.opts.SelfDecoded != nil {
		if err := s.codec.Decompress(tmp, job.payload); err != nil {
			jobErr = fmt.Errorf("allreduce: bucket %d self decode: %w", job.idx, err)
		} else {
			copy(s.opts.SelfDecoded[job.lo:job.hi], tmp)
		}
	}
	if err := mpi.WaitAll(job.sendReqs...); err != nil && jobErr == nil {
		jobErr = err
	}
	for _, req := range job.sendReqs {
		req.Release()
	}
	payloadLen := len(job.payload)
	sends := len(job.sendReqs)
	mpi.PutBytes(job.payload)
	s.stats.Buckets++
	res := BucketResult{Idx: job.idx, Lo: job.lo, Hi: job.hi}
	if jobErr != nil {
		if s.err == nil {
			s.err = jobErr
		}
		res.Err = jobErr
	} else {
		s.stats.BytesSent += int64(payloadLen) * int64(sends)
		s.stats.RawBytes += int64(4*width) * int64(sends)
	}
	s.retire(job)
	s.results <- res
	<-s.slots
}
