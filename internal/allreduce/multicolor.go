package allreduce

import (
	"fmt"
	"sync"

	"repro/internal/mpi"
)

// multiColor is the paper's k-color allreduce (Section 4.2): the payload is
// split into k chunks; chunk c is reduced up color c's k-ary spanning tree
// (whose interior nodes are disjoint from every other color's) and broadcast
// back down it. Chunks are further split into pipeline segments, and all k
// colors progress concurrently with no cross-color synchronization —
// mirroring the paper's description of concurrent per-color RDMA flows on
// the fat-tree.
func multiColor(c *mpi.Comm, data []float32, opts Options) error {
	n := c.Size()
	k := EffectiveColors(n, opts.Colors)
	rotation := n / k
	var wg sync.WaitGroup
	errs := make([]error, k)
	for color := 0; color < k; color++ {
		lo, hi := ChunkBounds(len(data), k, color)
		tree := BuildTree(n, k, color, rotation)
		wg.Add(1)
		go func(color int, chunk []float32, tree Tree) {
			defer wg.Done()
			errs[color] = reduceBcastTree(c, chunk, tree, color, opts.SegmentFloats)
		}(color, data[lo:hi], tree)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// reduceBcastTree pipelines one chunk up and back down one color's tree.
// The node's role is fixed by the tree: leaves only send segments to their
// parent; interior nodes sum their children's segments into their local
// contribution and forward; the root additionally turns each fully-reduced
// segment around and starts the downward broadcast immediately, so the
// reduce and broadcast phases overlap segment-by-segment.
func reduceBcastTree(c *mpi.Comm, chunk []float32, tree Tree, color, segFloats int) error {
	rank := c.Rank()
	parent := tree.Parent[rank]
	children := tree.Children[rank]
	upTag := tagMC + 2*color
	downTag := tagMC + 2*color + 1
	nseg := (len(chunk) + segFloats - 1) / segFloats
	if len(chunk) == 0 {
		nseg = 0
	}
	tmp := mpi.GetFloats(segFloats)
	defer mpi.PutFloats(tmp)

	// Upward (reduce) pass, root turnaround included.
	for s := 0; s < nseg; s++ {
		lo := s * segFloats
		hi := lo + segFloats
		if hi > len(chunk) {
			hi = len(chunk)
		}
		seg := chunk[lo:hi]
		for _, ch := range children {
			part := tmp[:len(seg)]
			if err := c.RecvFloatsInto(part, ch, upTag); err != nil {
				return fmt.Errorf("allreduce: multicolor segment from %d: %w", ch, err)
			}
			for i, v := range part {
				seg[i] += v
			}
		}
		if parent >= 0 {
			if err := c.SendFloats(parent, upTag, seg); err != nil {
				return err
			}
		} else {
			// Root: this segment is globally reduced; broadcast it down.
			for _, ch := range children {
				if err := c.SendFloats(ch, downTag, seg); err != nil {
					return err
				}
			}
		}
	}

	// Downward (broadcast) pass for non-roots.
	if parent < 0 {
		return nil
	}
	for s := 0; s < nseg; s++ {
		lo := s * segFloats
		hi := lo + segFloats
		if hi > len(chunk) {
			hi = len(chunk)
		}
		if err := c.RecvFloatsInto(chunk[lo:hi], parent, downTag); err != nil {
			return fmt.Errorf("allreduce: multicolor bcast segment: %w", err)
		}
		for _, ch := range children {
			if err := c.SendFloats(ch, downTag, chunk[lo:hi]); err != nil {
				return err
			}
		}
	}
	return nil
}
