package allreduce

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/mpi"
)

// Compressed-allreduce tags live in this package's reserved band. Bucket b
// uses tagCompressed + b mod compressedTagSpan; the pipeline keeps only a
// handful of buckets in flight, so a span of 1024 can never alias two live
// buckets, and per-(src,tag) FIFO delivery handles reuse across rounds.
const (
	tagCompressed     = tagBase + 64
	compressedTagSpan = 1024
)

// CompressedOptions tunes BucketedAllReduce.
type CompressedOptions struct {
	// BucketFloats is the bucket size in elements (default 16384).
	BucketFloats int
	// SelfDecoded, when non-nil (same length as data), receives the decode
	// of this rank's own payloads — the values the wire actually carried —
	// which error feedback needs to compute its residual.
	SelfDecoded []float32
}

// CompressedStats counts the traffic of one or more BucketedAllReduce calls.
type CompressedStats struct {
	// BytesSent and BytesRecv are compressed wire bytes from this rank's
	// perspective (each counts payloads to/from all size-1 peers).
	BytesSent int64
	BytesRecv int64
	// RawBytes is what the same exchange would have moved uncompressed.
	RawBytes int64
	// Buckets is the number of buckets processed.
	Buckets int64
}

// Add accumulates other into s.
func (s *CompressedStats) Add(other CompressedStats) {
	s.BytesSent += other.BytesSent
	s.BytesRecv += other.BytesRecv
	s.RawBytes += other.RawBytes
	s.Buckets += other.Buckets
}

// Ratio returns the achieved compression ratio (raw / sent), or 1 when
// nothing was sent.
func (s CompressedStats) Ratio() float64 {
	if s.BytesSent == 0 {
		return 1
	}
	return float64(s.RawBytes) / float64(s.BytesSent)
}

// bucketJob carries one bucket through the three pipeline stages.
type bucketJob struct {
	idx      int
	lo, hi   int
	payload  []byte
	sendReqs []*mpi.Request
	recvReqs []*mpi.Request // indexed by communicator rank; nil at own rank
}

// BucketedAllReduce sums data across every rank of c through the given
// compression codec. The vector is split into fixed-size buckets and each
// bucket flows through a three-stage pipeline — compress, exchange
// (Isend/Irecv to all peers), decompress+reduce — with the stages running on
// separate goroutines, so communication of bucket i overlaps compression of
// bucket i+1 and reduction of bucket i-1.
//
// The reduced value of every element is the sum of the DECODED payloads of
// all ranks, accumulated in rank order — identical bitwise on every rank —
// so synchronous-SGD replicas stay in lockstep even under lossy codecs.
// (This rank's own contribution is its decoded payload too, not its raw
// values: the compression error is accounted locally via SelfDecoded and,
// optionally, error feedback.)
func BucketedAllReduce(c *mpi.Comm, data []float32, codec compress.Codec, opts CompressedOptions) (CompressedStats, error) {
	bf := opts.BucketFloats
	if bf <= 0 {
		bf = 16384
	}
	var stats CompressedStats
	if opts.SelfDecoded != nil && len(opts.SelfDecoded) != len(data) {
		return stats, fmt.Errorf("allreduce: SelfDecoded length %d, data length %d", len(opts.SelfDecoded), len(data))
	}
	if len(data) == 0 {
		return stats, nil
	}
	n := c.Size()
	rank := c.Rank()
	nb := (len(data) + bf - 1) / bf
	stats.Buckets = int64(nb)

	if n == 1 {
		// Single rank: no traffic, but run the codec round trip so training
		// dynamics (and SelfDecoded) match what a cluster would compute.
		for b := 0; b < nb; b++ {
			lo, hi := b*bf, min(b*bf+bf, len(data))
			if err := codec.Decompress(data[lo:hi], codec.Compress(data[lo:hi])); err != nil {
				return stats, err
			}
		}
		if opts.SelfDecoded != nil {
			copy(opts.SelfDecoded, data)
		}
		return stats, nil
	}

	// Stage 1: compress buckets in order, running ahead of communication.
	compressed := make(chan bucketJob, 2)
	go func() {
		for b := 0; b < nb; b++ {
			lo, hi := b*bf, min(b*bf+bf, len(data))
			compressed <- bucketJob{idx: b, lo: lo, hi: hi, payload: codec.Compress(data[lo:hi])}
		}
		close(compressed)
	}()

	// Stage 2: launch the exchange for each bucket as soon as its payload is
	// ready; request handles flow to the reducer without waiting here.
	inflight := exchange(compressed, c, rank, n)

	// Stage 3 (this goroutine): decode all ranks' payloads in rank order and
	// overwrite the bucket with their sum.
	tmp := make([]float32, bf)
	acc := make([]float32, bf)
	var firstErr error
	for job := range inflight {
		if firstErr != nil {
			// An earlier bucket failed: still drain the pipeline's requests
			// so no goroutine is left blocked, but skip the arithmetic.
			for _, r := range job.recvReqs {
				if r != nil {
					r.Wait()
				}
			}
			mpi.WaitAll(job.sendReqs...)
			continue
		}
		width := job.hi - job.lo
		sum := acc[:width]
		for i := range sum {
			sum[i] = 0
		}
		for r := 0; r < n; r++ {
			var payload []byte
			if r == rank {
				payload = job.payload
			} else {
				b, err := job.recvReqs[r].Wait()
				if err != nil {
					firstErr = err
					break
				}
				stats.BytesRecv += int64(len(b))
				payload = b
			}
			part := tmp[:width]
			if err := codec.Decompress(part, payload); err != nil {
				firstErr = fmt.Errorf("allreduce: bucket %d from rank %d: %w", job.idx, r, err)
				break
			}
			if r == rank && opts.SelfDecoded != nil {
				copy(opts.SelfDecoded[job.lo:job.hi], part)
			}
			for i, v := range part {
				sum[i] += v
			}
		}
		if err := mpi.WaitAll(job.sendReqs...); err != nil && firstErr == nil {
			firstErr = err
		}
		if firstErr != nil {
			continue
		}
		copy(data[job.lo:job.hi], sum)
		stats.BytesSent += int64(len(job.payload)) * int64(n-1)
		stats.RawBytes += int64(4*width) * int64(n-1)
	}
	return stats, firstErr
}

// exchange consumes compressed buckets, starts their sends and receives,
// and yields jobs with the request handles attached.
func exchange(compressed <-chan bucketJob, c *mpi.Comm, rank, n int) <-chan bucketJob {
	out := make(chan bucketJob, 2)
	go func() {
		for job := range compressed {
			tag := tagCompressed + job.idx%compressedTagSpan
			job.recvReqs = make([]*mpi.Request, n)
			for r := 0; r < n; r++ {
				if r == rank {
					continue
				}
				job.sendReqs = append(job.sendReqs, c.Isend(r, tag, job.payload))
				job.recvReqs[r] = c.Irecv(r, tag)
			}
			out <- job
		}
		close(out)
	}()
	return out
}
