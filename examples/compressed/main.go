// compressed demonstrates the gradient-compression codecs on a real
// in-process training run: the same synthetic workload is trained once per
// codec regime (uncompressed bucketed baseline, int8 quantization, top-k
// sparsification with error feedback) and the final table shows the
// bytes-moved / final-loss trade-off — convergence parity at a fraction of
// the communication volume.
//
// Run: go run ./examples/compressed
package main

import (
	"fmt"
	"log"

	"repro/internal/allreduce"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/sgd"
)

func main() {
	const (
		classes  = 3
		size     = 8
		learners = 4
		steps    = 80
	)
	dataX, dataLabels := core.SyntheticTensorData(24, classes, size, 23)
	newReplica := func(seed int64) nn.Layer {
		return core.SmallBNFreeCNN(classes, size, 500+seed)
	}

	regimes := []struct {
		label string
		comp  compress.Config
	}{
		{"none (bucketed identity)", compress.Config{Codec: "none", BucketFloats: 2048}},
		{"int8 per-bucket scale", compress.Config{Codec: "int8", BucketFloats: 2048}},
		{"topk 10% + error feedback", compress.Config{Codec: "topk", TopKRatio: 0.1, ErrorFeedback: true, BucketFloats: 2048}},
	}

	type row struct {
		label  string
		loss   float64
		acc    float64
		sent   int64
		ratio  float64
		inSync bool
	}
	var rows []row
	for _, reg := range regimes {
		var acc float64
		res, err := core.RunCluster(core.ClusterConfig{
			Learners:       learners,
			DevicesPerNode: 1,
			NewReplica:     newReplica,
			NewSource: func(rank int) core.BatchSource {
				return &core.SliceSource{X: dataX, Labels: dataLabels, Rank: rank, Ranks: learners}
			},
			Steps:  steps,
			InputC: 3, InputH: size, InputW: size,
			Learner: core.Config{
				BatchPerDevice: 12 / learners,
				Allreduce:      allreduce.AlgMultiColor,
				Schedule:       sgd.Const(0.1),
				SGD:            sgd.DefaultConfig(),
				Compression:    reg.comp,
			},
			EvalEvery: steps,
			Eval: func(step int, l *core.Learner) {
				a, _, err := l.Evaluate(dataX, dataLabels)
				if err == nil {
					acc = a
				}
			},
		})
		if err != nil {
			log.Fatalf("%s: %v", reg.label, err)
		}
		inSync := true
		for r := 1; r < learners; r++ {
			for i := range res.FinalWeights[0] {
				if res.FinalWeights[r][i] != res.FinalWeights[0][i] {
					inSync = false
				}
			}
		}
		var tailLoss float64
		for _, l := range res.Losses[0][steps-5:] {
			tailLoss += l
		}
		cs := res.CommStats[0]
		rows = append(rows, row{
			label:  reg.label,
			loss:   tailLoss / 5,
			acc:    acc,
			sent:   cs.BytesSent + cs.BytesRecv,
			ratio:  cs.Ratio(),
			inSync: inSync,
		})
	}

	fmt.Printf("gradient compression on %d learners, %d steps (same data, model, schedule):\n\n", learners, steps)
	fmt.Printf("  %-28s  %12s  %7s  %10s  %8s  %s\n", "codec", "final loss", "acc", "wire bytes", "ratio", "replicas in sync")
	for _, r := range rows {
		fmt.Printf("  %-28s  %12.6f  %6.1f%%  %10d  %7.2fx  %v\n",
			r.label, r.loss, 100*r.acc, r.sent, r.ratio, r.inSync)
	}
	fmt.Println("\nall regimes train to parity; the lossy codecs move a fraction of the bytes.")
}
