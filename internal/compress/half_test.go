package compress

import (
	"math"
	"math/rand"
	"testing"
)

// isSNaN16 reports whether h is an f16 signaling NaN (exponent all-ones,
// nonzero mantissa, quiet bit clear). Encoding forces the quiet bit, so
// signaling payloads do not round-trip bit-exactly — the one excluded class.
func isSNaN16(h uint16) bool {
	return h&0x7C00 == 0x7C00 && h&0x3FF != 0 && h&0x200 == 0
}

// isSNaNBF16 is the bf16 analogue (quiet bit is mantissa bit 6).
func isSNaNBF16(h uint16) bool {
	return h&0x7F80 == 0x7F80 && h&0x7F != 0 && h&0x40 == 0
}

// TestHalfExhaustiveRoundTrip walks the ENTIRE 16-bit space of both formats:
// decode must be exact (every 16-bit float has an exact float32 widening)
// and re-encoding the decoded value must reproduce the original bits —
// normals, subnormals, ±0, ±Inf, and quiet NaNs alike. Signaling NaNs are
// the documented exception (encode quiets them).
func TestHalfExhaustiveRoundTrip(t *testing.T) {
	for h := 0; h <= 0xFFFF; h++ {
		bits := uint16(h)
		if !isSNaN16(bits) {
			if got := f32ToF16(f16ToF32(bits)); got != bits {
				t.Fatalf("f16 %04x decodes to %v but re-encodes to %04x", bits, f16ToF32(bits), got)
			}
		}
		if !isSNaNBF16(bits) {
			if got := f32ToBF16(bf16ToF32(bits)); got != bits {
				t.Fatalf("bf16 %04x decodes to %v but re-encodes to %04x", bits, bf16ToF32(bits), got)
			}
		}
	}
}

// nearestF16 is the brute-force round-to-nearest-even reference: scan every
// non-negative f16 candidate (with +Inf standing at 2^16, the next value the
// format would represent — the IEEE overflow-threshold convention), pick the
// closest in exact float64 arithmetic, break ties toward the even encoding.
func nearestF16(v float32) uint16 {
	sign := uint16(0)
	av := float64(v)
	if math.Signbit(av) {
		sign = 0x8000
		av = -av
	}
	best, bestDist := uint16(0), math.Inf(1)
	for h := 0; h <= 0x7C00; h++ {
		var val float64
		if h == 0x7C00 {
			val = 65536 // Inf's stand-in: the would-be next binade step
		} else {
			val = float64(f16ToF32(uint16(h)))
		}
		d := math.Abs(val - av)
		if d < bestDist || (d == bestDist && h&1 == 0) {
			best, bestDist = uint16(h), d
		}
	}
	return sign | best
}

// nearestBF16 is the same reference for bfloat16 (candidates are the
// upper-16-bit truncations; Inf stands at 2^128).
func nearestBF16(v float32) uint16 {
	sign := uint16(0)
	av := float64(v)
	if math.Signbit(av) {
		sign = 0x8000
		av = -av
	}
	best, bestDist := uint16(0), math.Inf(1)
	for h := 0; h <= 0x7F80; h++ {
		var val float64
		if h == 0x7F80 {
			val = math.Ldexp(1, 128)
		} else {
			val = float64(bf16ToF32(uint16(h)))
		}
		d := math.Abs(val - av)
		if d < bestDist || (d == bestDist && h&1 == 0) {
			best, bestDist = uint16(h), d
		}
	}
	return sign | best
}

// TestF16EncodeMatchesNearestEven pins the branchy magic-round encoder
// against the brute-force reference on the values that stress every
// boundary: overflow-to-Inf, the max finite, normal/subnormal crossover,
// underflow-to-zero ties, f32 subnormal inputs, and random values across
// the binades.
func TestF16EncodeMatchesNearestEven(t *testing.T) {
	edges := []float32{
		0, float32(math.Copysign(0, -1)),
		65504, 65519.996, 65520, 65536, 1e38, // overflow threshold: 65520 ties to Inf
		-65504, -65520,
		6.104e-5, 6.1035156e-5, // 2^-14: smallest normal
		6.097e-5,             // just below: subnormal
		5.9604645e-8,         // 2^-24: smallest subnormal
		2.9802322e-8,         // 2^-25: ties to zero (even)
		2.9802326e-8,         // just above the tie: rounds to 2^-24
		1.4e-8, 1e-10, 1e-44, // deep underflow, incl. f32 subnormals
		8.9407e-8,               // 1.5 * 2^-24: tie between 1st and 2nd subnormal, to even
		1, 1.0009765, 1.0004883, // mantissa rounding ties at 1+2^-11
		0.33333334, 3.1415927, 2.7182817,
	}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 300; i++ {
		edges = append(edges, (rng.Float32()*2-1)*float32(math.Pow(2, float64(rng.Intn(40)-24))))
	}
	for _, v := range edges {
		if got, want := f32ToF16(v), nearestF16(v); got != want {
			t.Fatalf("f32ToF16(%v) = %04x (%v), want %04x (%v)", v, got, f16ToF32(got), want, f16ToF32(want))
		}
	}
}

// TestBF16EncodeMatchesNearestEven: same reference check for bfloat16,
// whose boundaries live at the top of the f32 range instead.
func TestBF16EncodeMatchesNearestEven(t *testing.T) {
	edges := []float32{
		0, float32(math.Copysign(0, -1)),
		math.MaxFloat32, // rounds to Inf (above bf16 max finite)
		3.3895314e38,    // bf16 max finite
		3.3961775e38,    // tie between max finite (odd) and Inf (even): Inf
		-math.MaxFloat32, 1e-38, 1e-44, 1e-45,
		1, 1.00390625, 1.001953125, // mantissa ties at 1+2^-8
		0.33333334, 3.1415927,
	}
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 300; i++ {
		edges = append(edges, (rng.Float32()*2-1)*float32(math.Pow(2, float64(rng.Intn(80)-40))))
	}
	for _, v := range edges {
		if got, want := f32ToBF16(v), nearestBF16(v); got != want {
			t.Fatalf("f32ToBF16(%v) = %04x (%v), want %04x (%v)", v, got, bf16ToF32(got), want, bf16ToF32(want))
		}
	}
}

// TestHalfNaNStaysNaN: non-finite gradients must surface as divergence
// through the 16-bit wire formats, exactly like the int8 scale poisoning —
// NaN in, NaN out; Inf in, Inf out with the sign preserved.
func TestHalfNaNStaysNaN(t *testing.T) {
	for _, c := range []Codec{Float16{}, BFloat16{}} {
		src := []float32{1, float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1))}
		dst := make([]float32, len(src))
		if err := c.Decompress(dst, Encode(c, src)); err != nil {
			t.Fatal(err)
		}
		if !math.IsNaN(float64(dst[1])) {
			t.Fatalf("%s: NaN decoded to %v", c.Name(), dst[1])
		}
		if !math.IsInf(float64(dst[2]), 1) || !math.IsInf(float64(dst[3]), -1) {
			t.Fatalf("%s: Inf decoded to %v, %v", c.Name(), dst[2], dst[3])
		}
	}
}

// TestHalfRoundTripError bounds the relative error for values inside each
// format's normal range: f16 keeps 11 significand bits (relative half-ulp
// 2^-11), bf16 keeps 8 (relative half-ulp 2^-8).
func TestHalfRoundTripError(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for i := 0; i < 2000; i++ {
		// Magnitude in [2^e, 2^(e+1)) with e >= -14: inside the f16 NORMAL
		// range (subnormals trade relative precision for gradual underflow
		// and are pinned by the exhaustive/nearest-even tests instead).
		v := (1 + rng.Float32()) * float32(math.Pow(2, float64(rng.Intn(28)-14)))
		if rng.Intn(2) == 0 {
			v = -v
		}
		f16 := f16ToF32(f32ToF16(v))
		if rel := math.Abs(float64(f16-v)) / math.Abs(float64(v)); rel > 1.0/2048+1e-9 {
			t.Fatalf("f16 round trip of %v = %v, rel err %v", v, f16, rel)
		}
		bf := bf16ToF32(f32ToBF16(v))
		if rel := math.Abs(float64(bf-v)) / math.Abs(float64(v)); rel > 1.0/256+1e-9 {
			t.Fatalf("bf16 round trip of %v = %v, rel err %v", v, bf, rel)
		}
	}
}

// TestHalfPayloadHalvesBytes: the point of the formats — exactly 2 bytes per
// element on the wire, half of f32.
func TestHalfPayloadHalvesBytes(t *testing.T) {
	src := randVec(4096, 3)
	for _, c := range []Codec{Float16{}, BFloat16{}} {
		if got := len(Encode(c, src)); got != 2*len(src) {
			t.Fatalf("%s: payload %d bytes, want %d", c.Name(), got, 2*len(src))
		}
	}
}
