// trainctl runs real distributed training on an in-process cluster: N
// learners × m devices executing Algorithm 1 with the chosen allreduce
// algorithm, over synthetic data or the full DIMD pipeline (pack, partition,
// periodic shuffle, in-memory batches).
//
//	trainctl -learners 4 -devices 2 -steps 100 -alg multicolor
//	trainctl -dimd -shuffle-every 10 -model tinyresnet
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/allreduce"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dimd"
	"repro/internal/imagecodec"
	"repro/internal/models"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/sgd"
	"repro/internal/tensor"
)

func main() {
	var (
		learners     = flag.Int("learners", 4, "number of learner nodes")
		devices      = flag.Int("devices", 2, "devices (simulated GPUs) per learner")
		steps        = flag.Int("steps", 100, "training steps")
		batch        = flag.Int("batch", 4, "batch per device")
		model        = flag.String("model", "smallcnn", "smallcnn | tinyresnet | tinyinception")
		alg          = flag.String("alg", "multicolor", "allreduce algorithm: naive|ring|bucketring|rdoubling|rabenseifner|default|multicolor")
		lr           = flag.Float64("lr", 0.05, "peak learning rate")
		classes      = flag.Int("classes", 4, "number of classes")
		size         = flag.Int("size", 12, "image size (multiple of 4)")
		images       = flag.Int("images", 96, "dataset size")
		useDIMD      = flag.Bool("dimd", false, "use the full DIMD pipeline (codec pack + in-memory store)")
		useFiles     = flag.Bool("files", false, "use the baseline file-per-image loader DIMD replaces")
		shuffleEvery = flag.Int("shuffle-every", 10, "steps between DIMD shuffles (with -dimd)")
		seed         = flag.Int64("seed", 1, "random seed")
		compressAlg  = flag.String("compress", "", "gradient compression codec: none|int8|topk|f16|bf16 (empty = legacy uncompressed path)")
		topkRatio    = flag.Float64("topk-ratio", 0.1, "fraction of elements kept per bucket (with -compress=topk)")
		bucketFloats = flag.Int("bucket-floats", 16384, "bucketed-allreduce bucket size in float32 elements")
		errFeedback  = flag.Bool("error-feedback", true, "accumulate compression error into the next step (lossy codecs)")
		overlap      = flag.Bool("overlap", false, "reactive pipeline: overlap backward compute with the bucketed inter-node allreduce (bitwise identical to the phased bucketed path, i.e. the same -compress config with codec none when unset)")
		inFlight     = flag.Int("overlap-inflight", 0, "max gradient buckets in flight with -overlap (0 = default 8)")
		shardOpt     = flag.Bool("shard-optimizer", false, "ZeRO-1 sharded optimizer state: reduce-scatter gradients to shard owners, update only this rank's parameter shard, allgather updated params (bitwise identical to the replicated path; composes with -compress and -overlap)")
		nodes        = flag.Int("nodes", 0, "simulated node count: lays the learners out as -nodes × -ranks-per-node and routes the gradient exchange hierarchically (node members → node leader → inter-node leader chain; bitwise identical to the flat exchange; composes with -compress, -overlap, -shard-optimizer)")
		ranksPerNode = flag.Int("ranks-per-node", 0, "learner ranks per simulated node (with -nodes; default 1)")
	)
	flag.Parse()

	learnersSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "learners" {
			learnersSet = true
		}
	})
	var topo mpi.Topology
	if *nodes > 0 {
		rpn := *ranksPerNode
		if rpn <= 0 {
			rpn = 1
		}
		if learnersSet && *learners != *nodes*rpn {
			log.Fatalf("trainctl: -learners %d conflicts with -nodes %d × -ranks-per-node %d = %d (drop -learners or make them agree)",
				*learners, *nodes, rpn, *nodes*rpn)
		}
		*learners = *nodes * rpn
		topo = mpi.UniformTopology(*learners, rpn)
		fmt.Printf("topology: %d nodes × %d ranks/node — hierarchical gradient exchange\n", *nodes, rpn)
	} else if *ranksPerNode > 0 {
		log.Fatal("trainctl: -ranks-per-node requires -nodes")
	}

	newReplica := func(s int64) nn.Layer {
		rng := tensor.NewRNG(*seed*1000 + s)
		switch *model {
		case "tinyresnet":
			return models.NewTinyResNet(*classes, 1, rng)
		case "tinyinception":
			return models.NewTinyInception(*classes, rng)
		default:
			return models.NewSmallCNN(*classes, *size, rng)
		}
	}

	cfg := core.ClusterConfig{
		Learners:       *learners,
		DevicesPerNode: *devices,
		NewReplica:     newReplica,
		Steps:          *steps,
		InputC:         3, InputH: *size, InputW: *size,
		Learner: core.Config{
			BatchPerDevice: *batch,
			Allreduce:      allreduce.Algorithm(*alg),
			Schedule:       sgd.Const(*lr),
			SGD:            sgd.DefaultConfig(),
			Compression: compress.Config{
				Codec:         *compressAlg,
				TopKRatio:     *topkRatio,
				BucketFloats:  *bucketFloats,
				ErrorFeedback: *errFeedback,
			},
			Overlap:         *overlap,
			OverlapInFlight: *inFlight,
			ShardOptimizer:  *shardOpt,
			Topology:        topo,
		},
	}

	var evalX *tensor.Tensor
	var evalLabels []int
	aug := imagecodec.Augment{Crop: *size, Mean: [3]float32{0.5, 0.5, 0.5}, Std: [3]float32{0.25, 0.25, 0.25}}
	switch {
	case *useDIMD:
		corpus, err := dataset.New(dataset.Spec{Classes: *classes, Train: *images, Val: 16, Size: *size + 8, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("packing %d synthetic images through the codec...\n", *images)
		pack := dimd.Build(*images, func(i int) (int, []byte) {
			return corpus.Label(i), corpus.EncodedImage(i, 80)
		})
		stores := make([]*dimd.Store, *learners)
		for r := range stores {
			s, err := dimd.LoadPartition(pack, r, *learners)
			if err != nil {
				log.Fatal(err)
			}
			stores[r] = s
		}
		cfg.NewSource = func(rank int) core.BatchSource {
			return &core.DIMDSource{Store: stores[rank], Aug: aug, RNG: tensor.NewRNG(*seed + int64(rank))}
		}
		cfg.Stores = func(rank int) *dimd.Store { return stores[rank] }
		cfg.ShuffleEvery = *shuffleEvery
	case *useFiles:
		corpus, err := dataset.New(dataset.Spec{Classes: *classes, Train: *images, Val: 16, Size: *size + 8, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		dir, err := os.MkdirTemp("", "trainctl-files-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		fmt.Printf("writing %d image files to %s (the baseline layout DIMD replaces)...\n", *images, dir)
		fs, err := dimd.WriteFileStore(dir, *images, func(i int) (int, []byte) {
			return corpus.Label(i), corpus.EncodedImage(i, 80)
		})
		if err != nil {
			log.Fatal(err)
		}
		cfg.NewSource = func(rank int) core.BatchSource {
			return &core.FileSource{Store: fs, Aug: aug, RNG: tensor.NewRNG(*seed + int64(rank))}
		}
	default:
		evalX, evalLabels = core.SyntheticTensorData(*images, *classes, *size, *seed)
		cfg.NewSource = func(rank int) core.BatchSource {
			return &core.SliceSource{X: evalX, Labels: evalLabels, Rank: rank, Ranks: *learners}
		}
	}

	start := time.Now()
	res, err := core.RunCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	losses := res.Losses[0]
	fmt.Printf("trained %d steps on %d learners × %d devices (%s, %s) in %v\n",
		*steps, *learners, *devices, *model, *alg, elapsed.Round(time.Millisecond))
	stride := *steps / 10
	if stride == 0 {
		stride = 1
	}
	for t := 0; t < *steps; t += stride {
		fmt.Printf("  step %4d  loss %.4f\n", t, losses[t])
	}
	fmt.Printf("  step %4d  loss %.4f\n", *steps-1, losses[*steps-1])

	inSync := true
	for r := 1; r < *learners; r++ {
		for i := range res.FinalWeights[0] {
			if res.FinalWeights[r][i] != res.FinalWeights[0][i] {
				inSync = false
			}
		}
	}
	fmt.Printf("learners in sync: %v\n", inSync)

	ph := res.Phases[0]
	total := ph.Total()
	if total > 0 {
		mode := "Algorithm 1, phased"
		if *overlap {
			mode = "reactive pipeline; allreduce = exposed tail only"
		}
		fmt.Printf("learner 0 phase breakdown (%s):\n", mode)
		fmt.Printf("  data %5.1f%%  compute %5.1f%%  intra-node %5.1f%%  allreduce %5.1f%%  update %5.1f%%\n",
			100*ph.Data/total, 100*ph.Compute/total, 100*ph.IntraNode/total, 100*ph.AllReduce/total, 100*ph.Update/total)
	}
	if *shardOpt {
		fmt.Printf("sharded optimizer state (ZeRO-1): per-rank bytes:")
		for r, b := range res.OptStateBytes {
			fmt.Printf(" rank%d=%d", r, b)
		}
		fmt.Println()
	}
	if cs := res.CommStats[0]; cs.BytesSent > 0 || cs.Buckets > 0 {
		codec := *compressAlg
		if codec == "" {
			codec = "none"
		}
		fmt.Printf("gradient compression (%s): sent %d bytes over %d buckets (raw %d, ratio %.2fx)\n",
			codec, cs.BytesSent, cs.Buckets, cs.RawBytes, cs.Ratio())
	}
}
