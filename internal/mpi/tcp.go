package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPWorld connects ranks over TCP sockets, one listener per rank, for runs
// where each learner is a separate OS process (or to exercise a real network
// stack under the collectives). Frames are length-prefixed:
// [src:4][ctx:8][tag:4][len:4][payload].
type TCPWorld struct {
	rank      int
	addrs     []string
	listener  net.Listener
	box       *mailbox
	mu        sync.Mutex
	conns     map[int]net.Conn // outbound, keyed by peer rank
	accepted  []net.Conn       // inbound, closed on shutdown
	closeOnce sync.Once
	wg        sync.WaitGroup
	detect    time.Duration // heartbeat-style Recv deadline; 0 disables
}

const tcpFrameHeader = 4 + 8 + 4 + 4

// NewTCPWorld creates the transport endpoint for one rank. addrs lists every
// rank's listen address in rank order; addrs[rank] is bound locally. Call
// Close when done.
func NewTCPWorld(rank int, addrs []string) (*TCPWorld, error) {
	if rank < 0 || rank >= len(addrs) {
		return nil, fmt.Errorf("mpi: tcp rank %d out of range for %d addrs", rank, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("mpi: tcp listen %s: %w", addrs[rank], err)
	}
	w := &TCPWorld{
		rank:     rank,
		addrs:    append([]string(nil), addrs...),
		listener: ln,
		box:      newMailbox(rank),
		conns:    make(map[int]net.Conn),
	}
	w.wg.Add(1)
	go w.acceptLoop()
	return w, nil
}

// Addr returns the bound listen address (useful with ":0" dynamic ports).
func (w *TCPWorld) Addr() string { return w.listener.Addr().String() }

// SetAddrs replaces the peer address table (used after dynamic port
// assignment, before any Send).
func (w *TCPWorld) SetAddrs(addrs []string) { w.addrs = append([]string(nil), addrs...) }

// SetDetectTimeout enables heartbeat-style failure detection: a Recv that
// sees no matching message within d presumes the source dead, marks it down
// (subsequent receives from it fail fast), and returns a *RankDownError.
// There is no out-of-band heartbeat channel — the expected message IS the
// heartbeat, which is the right model for a collective pipeline whose peers
// exchange traffic every bucket. Call before Recv; zero disables.
func (w *TCPWorld) SetDetectTimeout(d time.Duration) { w.detect = d }

func (w *TCPWorld) acceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.listener.Accept()
		if err != nil {
			return // listener closed
		}
		w.mu.Lock()
		w.accepted = append(w.accepted, conn)
		w.mu.Unlock()
		w.wg.Add(1)
		go w.readLoop(conn)
	}
}

func (w *TCPWorld) readLoop(conn net.Conn) {
	defer w.wg.Done()
	defer conn.Close()
	var hdr [tcpFrameHeader]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		src := int(int32(binary.LittleEndian.Uint32(hdr[0:])))
		ctx := binary.LittleEndian.Uint64(hdr[4:])
		tag := int(int32(binary.LittleEndian.Uint32(hdr[12:])))
		n := binary.LittleEndian.Uint32(hdr[16:])
		payload := GetBytes(int(n))
		if _, err := io.ReadFull(conn, payload); err != nil {
			PutBytes(payload)
			return
		}
		if w.box.put(msgKey{src: src, ctx: ctx, tag: tag}, payload) != nil {
			PutBytes(payload)
			return
		}
	}
}

// Comm returns the world communicator for this rank.
func (w *TCPWorld) Comm() (*Comm, error) {
	group := make([]int, len(w.addrs))
	for i := range group {
		group[i] = i
	}
	return newComm(w, w.rank, group, 1)
}

// Send implements Transport.
func (w *TCPWorld) Send(dst int, ctx uint64, tag int, data []byte) error {
	if dst == w.rank {
		cp := GetBytes(len(data))
		copy(cp, data)
		if err := w.box.put(msgKey{src: w.rank, ctx: ctx, tag: tag}, cp); err != nil {
			PutBytes(cp)
			return err
		}
		return nil
	}
	conn, err := w.conn(dst)
	if err != nil {
		return err
	}
	frame := GetBytes(tcpFrameHeader + len(data))
	binary.LittleEndian.PutUint32(frame[0:], uint32(w.rank))
	binary.LittleEndian.PutUint64(frame[4:], ctx)
	binary.LittleEndian.PutUint32(frame[12:], uint32(tag))
	binary.LittleEndian.PutUint32(frame[16:], uint32(len(data)))
	copy(frame[tcpFrameHeader:], data)
	w.mu.Lock()
	_, err = conn.Write(frame)
	w.mu.Unlock()
	PutBytes(frame)
	if err != nil {
		// A dead peer shows up as a broken connection: surface it as a
		// rank failure so callers can distinguish it from local errors.
		return &RankDownError{Rank: dst, Cause: fmt.Errorf("tcp send: %w", err)}
	}
	return nil
}

// SendOwned implements Transport: over TCP the buffer is serialized into the
// frame and then released to the pool (self-sends deliver it directly).
func (w *TCPWorld) SendOwned(dst int, ctx uint64, tag int, data []byte) error {
	if dst == w.rank {
		if err := w.box.put(msgKey{src: w.rank, ctx: ctx, tag: tag}, data); err != nil {
			PutBytes(data)
			return err
		}
		return nil
	}
	err := w.Send(dst, ctx, tag, data)
	PutBytes(data)
	return err
}

func (w *TCPWorld) conn(dst int) (net.Conn, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if c, ok := w.conns[dst]; ok {
		return c, nil
	}
	c, err := net.Dial("tcp", w.addrs[dst])
	if err != nil {
		return nil, &RankDownError{Rank: dst, Cause: fmt.Errorf("tcp dial %s: %w", w.addrs[dst], err)}
	}
	w.conns[dst] = c
	return c, nil
}

// Recv implements Transport. With a detection timeout set, a silent source
// is presumed dead: the Recv returns a *RankDownError and the source is
// marked down so later receives fail without waiting out the timeout again.
func (w *TCPWorld) Recv(src int, ctx uint64, tag int) ([]byte, error) {
	k := msgKey{src: src, ctx: ctx, tag: tag}
	if w.detect <= 0 {
		return w.box.get(k)
	}
	b, err := w.box.getTimeout(k, w.detect)
	if err != nil && errors.Is(err, errDetectTimeout) {
		w.box.markDown(src)
	}
	return b, err
}

// TryRecv implements Transport.
func (w *TCPWorld) TryRecv(src int, ctx uint64, tag int) ([]byte, bool, error) {
	return w.box.tryGet(msgKey{src: src, ctx: ctx, tag: tag})
}

// NumRanks implements Transport.
func (w *TCPWorld) NumRanks() int { return len(w.addrs) }

// Close shuts down the listener and all connections; pending receives
// return ErrClosed.
func (w *TCPWorld) Close() error {
	w.closeOnce.Do(func() {
		w.listener.Close()
		w.mu.Lock()
		for _, c := range w.conns {
			c.Close()
		}
		// Accepted (inbound) connections must be closed too: their read
		// loops otherwise block in ReadFull until the remote side closes,
		// which may be waiting on us — a shutdown deadlock.
		for _, c := range w.accepted {
			c.Close()
		}
		w.mu.Unlock()
		w.box.close()
		w.wg.Wait()
	})
	return nil
}
