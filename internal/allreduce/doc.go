// Package allreduce implements the gradient-summation collectives the paper
// evaluates (Section 4.2, Figures 5-6): the multi-color k-ary-tree pipelined
// allreduce (the paper's contribution), a pipelined single-root ring (the
// paper's ring baseline), recursive doubling and Rabenseifner reduce-scatter/
// allgather (standing in for the default OpenMPI algorithm), and the classic
// bucket ring for ablation. All algorithms run over an mpi.Comm and reduce a
// float32 vector in place with summation, leaving the result on every rank.
//
// Underneath the allreduce algorithms sits a composable collectives layer
// (collectives.go): ReduceScatter and AllGather over an explicit shard
// layout, in ring and Rabenseifner (recursive halving/doubling) variants.
// The bucket ring and Rabenseifner allreduces are literally compositions of
// the two primitives, and the compressed bucketed Stream can stop at the
// reduce-scatter boundary (StreamOptions.ShardBounds) — the foundation for
// ZeRO-1-style sharded optimization in internal/core.
//
// The Stream is also topology-aware (StreamOptions.Topology, surfaced as
// AlgHierarchical): under an mpi.Topology describing the rank→node layout,
// bucket payloads route hierarchically — node members to their node leader
// over the cheap intra-node links, leaders chaining partial sums across the
// inter-node fabric in node order, the final leader fanning the result back
// out — cutting slow-link traffic per bucket from (size-1) payloads per
// rank to O(nodes) messages in total while staying bitwise identical to the
// flat exchange's rank-order reduction.
package allreduce
