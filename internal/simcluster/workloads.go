package simcluster

import (
	"fmt"

	"repro/internal/allreduce"
)

// Workload generalizes the cluster model to any of the CNNs the paper's
// introduction motivates ("AlexNet, GoogleNet, VGG, Resnet and network in
// network"): a gradient payload and a per-GPU throughput. Payloads are the
// fp32 parameter counts of the real models in internal/models; rates are
// order-of-magnitude P100 throughputs (fwd+bwd, batch 64) — the analysis
// they feed (communication sensitivity, below) depends on the payload/rate
// *ratio*, which spans 100× across these models.
type Workload struct {
	Name         string
	PayloadBytes float64
	GPURate      float64 // images/second/GPU
}

// MotivatingWorkloads returns the introduction's model set. Parameter
// counts match internal/models (verified by tests); GoogLeNetBN uses the
// paper's stated 93 MB payload.
func MotivatingWorkloads() []Workload {
	return []Workload{
		{Name: "alexnet", PayloadBytes: 4 * 61_100_840, GPURate: 800},
		{Name: "nin", PayloadBytes: 4 * 7_439_608, GPURate: 520},
		{Name: "googlenetbn", PayloadBytes: 93e6, GPURate: 265},
		{Name: "resnet50", PayloadBytes: 4 * 25_557_032, GPURate: 183},
		{Name: "vgg16", PayloadBytes: 4 * 138_357_544, GPURate: 48},
	}
}

// SensitivityRow is one workload's communication profile at a node count.
type SensitivityRow struct {
	Workload string
	// StepDefault/StepMultiColor are simulated step times under the two
	// allreduce schemes, seconds.
	StepDefault, StepMultiColor float64
	// CommFractionDefault is the share of the default-scheme step spent in
	// the allreduce — the degree to which the workload is communication
	// bound on the stock stack.
	CommFractionDefault float64
	// SpeedupPct is the end-to-end step speedup the multi-color allreduce
	// delivers for this workload.
	SpeedupPct float64
}

// CommSensitivity analyzes how much each motivating workload gains from the
// multi-color allreduce at the given scale: models with high
// payload-to-compute ratios (AlexNet's giant FC layers, VGG-16's 553 MB)
// are communication-bound and gain the most — the regime the paper's
// optimization targets as clusters grow.
func (c *Cluster) CommSensitivity(nodes int) ([]SensitivityRow, *Table, error) {
	tbl := &Table{
		Title: fmt.Sprintf("Communication sensitivity of the motivating workloads (%d nodes)", nodes),
		Header: []string{"workload", "payload MB", "img/s/GPU",
			"step default", "step multicolor", "comm frac", "speedup"},
	}
	var rows []SensitivityRow
	for _, w := range MotivatingWorkloads() {
		compute := float64(c.Params.BatchPerGPU) / w.GPURate
		commDef, err := c.AllReduce(allreduce.AlgDefault, nodes, w.PayloadBytes)
		if err != nil {
			return nil, nil, err
		}
		commMC, err := c.AllReduce(allreduce.AlgMultiColor, nodes, w.PayloadBytes)
		if err != nil {
			return nil, nil, err
		}
		stepDef := compute + commDef
		stepMC := compute + commMC
		r := SensitivityRow{
			Workload:            w.Name,
			StepDefault:         stepDef,
			StepMultiColor:      stepMC,
			CommFractionDefault: commDef / stepDef,
			SpeedupPct:          (stepDef - stepMC) / stepMC * 100,
		}
		rows = append(rows, r)
		tbl.Rows = append(tbl.Rows, []string{
			w.Name,
			fmt.Sprintf("%.0f", w.PayloadBytes/1e6),
			fmt.Sprintf("%.0f", w.GPURate),
			fmt.Sprintf("%.3fs", stepDef),
			fmt.Sprintf("%.3fs", stepMC),
			fmt.Sprintf("%.0f%%", r.CommFractionDefault*100),
			fmt.Sprintf("%.0f%%", r.SpeedupPct),
		})
	}
	return rows, tbl, nil
}
