package simcluster

import (
	"fmt"

	"repro/internal/allreduce"
	"repro/internal/simnet"
)

// CommParams calibrates how the collective schedules map onto the fabric.
type CommParams struct {
	// SumRate is the rate (bytes/s) at which a host folds an incoming
	// network buffer into its local contribution (the paper uses PowerPC
	// altivec for this).
	SumRate float64
	// CopyRate models the default OpenMPI path's extra staging copies
	// through host buffers (no direct verbs pipelining), bytes/s.
	CopyRate float64
	// Segments is the pipeline depth simulated for the ring and
	// multi-color schedules.
	Segments int
	// Colors is the multi-color k (paper: 4).
	Colors int
}

// DefaultCommParams returns the calibrated constants (see EXPERIMENTS.md).
func DefaultCommParams() CommParams {
	return CommParams{
		SumRate:  18e9,
		CopyRate: 0.9e9,
		Segments: 8,
		Colors:   4,
	}
}

// AllReduceTime simulates one allreduce of payloadBytes across the first
// `nodes` hosts of topo under the named algorithm and returns the makespan
// in seconds.
func AllReduceTime(topo *simnet.FatTree, nodes int, alg allreduce.Algorithm, payloadBytes float64, p CommParams) (float64, error) {
	if nodes < 1 || nodes > topo.Hosts {
		return 0, fmt.Errorf("simcluster: %d nodes on %d-host fabric", nodes, topo.Hosts)
	}
	if nodes == 1 || payloadBytes == 0 {
		return 0, nil
	}
	switch alg {
	case allreduce.AlgMultiColor:
		return multiColorTime(topo, nodes, payloadBytes, p)
	case allreduce.AlgRing:
		return ringTime(topo, nodes, payloadBytes, p)
	case allreduce.AlgDefault, allreduce.AlgRabenseifner:
		return defaultMPITime(topo, nodes, payloadBytes, p)
	default:
		return 0, fmt.Errorf("simcluster: no schedule builder for %q", alg)
	}
}

// multiColorTime builds the paper's k-color tree schedule: chunk c reduced
// up color c's k-ary tree and broadcast back down, segments pipelined, each
// color on its own rail (mod the rail count) so colors progress concurrently
// on disjoint links.
func multiColorTime(topo *simnet.FatTree, nodes int, payload float64, p CommParams) (float64, error) {
	k := allreduce.EffectiveColors(nodes, p.Colors)
	sim := simnet.NewSim(topo)
	segs := p.Segments
	if segs < 1 {
		segs = 1
	}
	for color := 0; color < k; color++ {
		lo, hi := allreduce.ChunkBounds(int(payload), k, color)
		chunk := float64(hi - lo)
		if chunk == 0 {
			continue
		}
		tree := allreduce.BuildTree(nodes, k, color, nodes/k)
		rail := color % topo.Rails
		segBytes := chunk / float64(segs)
		sumDelay := segBytes / p.SumRate

		// upDone[node] per segment: flow id whose completion means node's
		// fully-summed segment is available.
		prevUpSend := make(map[int]simnet.FlowID) // node -> its last up-send
		prevDownSend := make(map[[2]int]simnet.FlowID)
		upDone := make(map[int]simnet.FlowID)
		prevRootSync := simnet.FlowID(-1)
		var order []int // BFS order: parents before children; process reversed
		order = append(order, tree.Root)
		for i := 0; i < len(order); i++ {
			order = append(order, tree.Children[order[i]]...)
		}
		downReady := make(map[int]simnet.FlowID)
		for s := 0; s < segs; s++ {
			// Reduce: process leaves first (reverse BFS).
			for i := len(order) - 1; i >= 0; i-- {
				node := order[i]
				var deps []simnet.FlowID
				for _, ch := range tree.Children[node] {
					deps = append(deps, upDone[ch])
				}
				delay := 0.0
				if len(tree.Children[node]) > 0 {
					delay = sumDelay * float64(len(tree.Children[node]))
				}
				if tree.Parent[node] < 0 {
					// Root: a zero-byte sync marks the segment reduced.
					sync := sim.MustAddFlow(node, node, rail, 0, deps, delay)
					upDone[node] = sync
					prevRootSync = sync
					continue
				}
				if prev, ok := prevUpSend[node]; ok {
					deps = append(deps, prev) // sender serializes its segments
				}
				id := sim.MustAddFlow(node, tree.Parent[node], rail, segBytes, deps, delay)
				prevUpSend[node] = id
				upDone[node] = id
			}
			// Broadcast: parents forward down in BFS order.
			downReady[tree.Root] = prevRootSync
			for _, node := range order {
				for _, ch := range tree.Children[node] {
					deps := []simnet.FlowID{downReady[node]}
					key := [2]int{node, ch}
					if prev, ok := prevDownSend[key]; ok {
						deps = append(deps, prev)
					}
					id := sim.MustAddFlow(node, ch, rail, segBytes, deps, 0)
					prevDownSend[key] = id
					downReady[ch] = id
				}
			}
		}
	}
	_, makespan, err := sim.Run()
	return makespan, err
}

// ringTime builds the paper's ring baseline: segments reduced along the ring
// to a single root then broadcast in the opposite direction, pipelined, on a
// single rail (one connection path — the limitation the multi-color design
// removes).
func ringTime(topo *simnet.FatTree, nodes int, payload float64, p CommParams) (float64, error) {
	sim := simnet.NewSim(topo)
	segs := p.Segments
	if segs < 1 {
		segs = 1
	}
	segBytes := payload / float64(segs)
	sumDelay := segBytes / p.SumRate
	prevSend := make(map[int]simnet.FlowID)
	prevDown := make(map[int]simnet.FlowID)
	var rootHas simnet.FlowID = -1
	for s := 0; s < segs; s++ {
		// Reduce phase: node n-1 -> n-2 -> ... -> 0.
		var arrived simnet.FlowID = -1 // at current node, this segment
		for node := nodes - 1; node >= 1; node-- {
			var deps []simnet.FlowID
			if arrived >= 0 {
				deps = append(deps, arrived)
			}
			if prev, ok := prevSend[node]; ok {
				deps = append(deps, prev)
			}
			delay := 0.0
			if node < nodes-1 {
				delay = sumDelay // folded the received segment into local data
			}
			id := sim.MustAddFlow(node, node-1, 0, segBytes, deps, delay)
			prevSend[node] = id
			arrived = id
		}
		// Root sums the last arrival.
		rootSync := sim.MustAddFlow(0, 0, 0, 0, []simnet.FlowID{arrived}, sumDelay)
		rootHas = rootSync
		// Broadcast phase: 0 -> 1 -> ... -> n-1.
		prevArrival := rootHas
		for node := 0; node < nodes-1; node++ {
			deps := []simnet.FlowID{prevArrival}
			if prev, ok := prevDown[node]; ok {
				deps = append(deps, prev)
			}
			id := sim.MustAddFlow(node, node+1, 0, segBytes, deps, 0)
			prevDown[node] = id
			prevArrival = id
		}
	}
	_, makespan, err := sim.Run()
	return makespan, err
}

// defaultMPITime models the stock OpenMPI large-message allreduce:
// Rabenseifner reduce-scatter + allgather, rounds strictly serialized (no
// cross-round pipelining) with every round's payload staged through host
// buffers at CopyRate — the copy-bound path the paper replaces with direct
// Infiniband verbs.
func defaultMPITime(topo *simnet.FatTree, nodes int, payload float64, p CommParams) (float64, error) {
	sim := simnet.NewSim(topo)
	p2 := 1
	for p2*2 <= nodes {
		p2 *= 2
	}
	last := make(map[int]simnet.FlowID) // per node: its latest operation
	dep := func(node int) []simnet.FlowID {
		if id, ok := last[node]; ok {
			return []simnet.FlowID{id}
		}
		return nil
	}
	// Fold extras into the power-of-two core.
	for r := p2; r < nodes; r++ {
		id := sim.MustAddFlow(r, r-p2, 0, payload, nil, payload/p.CopyRate)
		last[r-p2] = id
	}
	// Reduce-scatter: recursive halving.
	size := payload / 2
	for d := p2 / 2; d >= 1; d /= 2 {
		ids := make(map[int]simnet.FlowID)
		for node := 0; node < p2; node++ {
			partner := node ^ d
			deps := append(dep(node), dep(partner)...)
			ids[node] = sim.MustAddFlow(node, partner, 0, size, deps, size/p.CopyRate+size/p.SumRate)
		}
		for node := 0; node < p2; node++ {
			// Node continues once it has both sent and received.
			sync := sim.MustAddFlow(node, node, 0, 0, []simnet.FlowID{ids[node], ids[node^d]}, 0)
			last[node] = sync
		}
		size /= 2
	}
	// Allgather: recursive doubling with growing payloads.
	size = payload / float64(p2)
	for d := 1; d < p2; d *= 2 {
		ids := make(map[int]simnet.FlowID)
		for node := 0; node < p2; node++ {
			partner := node ^ d
			deps := append(dep(node), dep(partner)...)
			ids[node] = sim.MustAddFlow(node, partner, 0, size, deps, size/p.CopyRate)
		}
		for node := 0; node < p2; node++ {
			sync := sim.MustAddFlow(node, node, 0, 0, []simnet.FlowID{ids[node], ids[node^d]}, 0)
			last[node] = sync
		}
		size *= 2
	}
	// Fan results back to the folded extras.
	for r := p2; r < nodes; r++ {
		sim.MustAddFlow(r-p2, r, 0, payload, dep(r-p2), payload/p.CopyRate)
	}
	_, makespan, err := sim.Run()
	return makespan, err
}

// AllToAllVTime simulates the DIMD shuffle (Figures 7-9): every learner
// scatters its partition uniformly to its shuffle group. perNodeBytes is the
// partition size held by each learner; packRate models the serialized
// pack/unpack of image records through MPI buffers on each host (the
// dominant cost at these message sizes, calibrated in EXPERIMENTS.md).
// groups > 1 restricts traffic to contiguous groups of learners.
func AllToAllVTime(topo *simnet.FatTree, nodes int, perNodeBytes float64, groups int, packRate float64) (float64, error) {
	if groups < 1 {
		groups = 1
	}
	if nodes < 1 || nodes > topo.Hosts {
		return 0, fmt.Errorf("simcluster: %d nodes on %d-host fabric", nodes, topo.Hosts)
	}
	sim := simnet.NewSim(topo)
	per := nodes / groups
	if per < 1 {
		per = 1
	}
	for src := 0; src < nodes; src++ {
		g := src / per
		lo := g * per
		hi := lo + per
		if hi > nodes {
			hi = nodes
		}
		members := hi - lo
		if members < 1 {
			members = 1
		}
		pair := perNodeBytes / float64(members)
		// The host CPU marshals every local record — self-destined ones
		// included, since the whole partition is re-permuted (Algorithm 2's
		// final local shuffle) — one destination buffer at a time, modeled
		// as chained zero-byte flows carrying the pack delay. Each network
		// transfer starts as soon as its buffer is packed and overlaps the
		// remaining packing. Destinations are shifted by rank, matching
		// mpi.AllToAllV. Because the per-node marshalling volume is the
		// whole partition regardless of group size, group-restricted
		// shuffles on a symmetric fabric take about the same time as the
		// flat shuffle — the paper's Figure 9 observation.
		var prevPack simnet.FlowID = -1
		for s := 0; s < members; s++ {
			dst := lo + (src-lo+s)%members
			var packDeps []simnet.FlowID
			if prevPack >= 0 {
				packDeps = append(packDeps, prevPack)
			}
			pack := sim.MustAddFlow(src, src, 0, 0, packDeps, pair/packRate)
			prevPack = pack
			if dst == src {
				continue // local copy: no network flow
			}
			rail := s % topo.Rails
			sim.MustAddFlow(src, dst, rail, pair, []simnet.FlowID{pack}, 0)
		}
	}
	_, makespan, err := sim.Run()
	return makespan, err
}
