package nn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestConvForwardKnownValues(t *testing.T) {
	rng := tensor.NewRNG(1)
	conv := NewConv2D("c", 1, 1, 2, 2, 1, 1, 0, 0, ConvOpts{Bias: true}, rng)
	conv.Weight.Value.CopyFrom(tensor.MustFromSlice([]float32{1, 2, 3, 4}, 4))
	conv.Bias.Value.Data[0] = 10
	x := tensor.MustFromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	y := conv.Forward(x, true)
	// window(0,0) = 1+4+12+20 = 37; +bias = 47
	want := tensor.MustFromSlice([]float32{47, 57, 77, 87}, 1, 1, 2, 2)
	if !y.ApproxEqual(want, 1e-5) {
		t.Fatalf("conv out %v, want %v", y.Data, want.Data)
	}
}

func TestConvOutputShape(t *testing.T) {
	rng := tensor.NewRNG(2)
	// The ResNet-50 stem: 7x7/2 pad 3, 224 -> 112.
	conv := NewConv2D("stem", 3, 64, 7, 7, 2, 2, 3, 3, ConvOpts{}, rng)
	x := tensor.New(1, 3, 224, 224)
	y := conv.Forward(x, false)
	if y.Dim(1) != 64 || y.Dim(2) != 112 || y.Dim(3) != 112 {
		t.Fatalf("stem out shape %v, want [1 64 112 112]", y.Shape())
	}
}

func TestConvShapeMismatchPanics(t *testing.T) {
	rng := tensor.NewRNG(2)
	conv := NewConv2D("c", 3, 4, 3, 3, 1, 1, 1, 1, ConvOpts{}, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong channel count did not panic")
		}
	}()
	conv.Forward(tensor.New(1, 2, 5, 5), false)
}

func TestBatchNormNormalizesTrainOutput(t *testing.T) {
	rng := tensor.NewRNG(3)
	bn := NewBatchNorm2D("bn", 2, rng)
	x := tensor.New(8, 2, 4, 4)
	rng.FillNormal(x, 5, 3)
	y := bn.Forward(x, true)
	// With gamma=1, beta=0 each channel of y should be ~N(0,1).
	n, hw := 8, 16
	for c := 0; c < 2; c++ {
		var sum, sq float64
		for i := 0; i < n; i++ {
			base := (i*2 + c) * hw
			for j := 0; j < hw; j++ {
				v := float64(y.Data[base+j])
				sum += v
				sq += v * v
			}
		}
		m := float64(n * hw)
		mean := sum / m
		variance := sq/m - mean*mean
		if math.Abs(mean) > 1e-4 {
			t.Fatalf("channel %d mean %v, want ~0", c, mean)
		}
		if math.Abs(variance-1) > 1e-2 {
			t.Fatalf("channel %d var %v, want ~1", c, variance)
		}
	}
}

func TestBatchNormRunningStatsConverge(t *testing.T) {
	rng := tensor.NewRNG(4)
	bn := NewBatchNorm2D("bn", 1, rng)
	x := tensor.New(16, 1, 8, 8)
	for i := 0; i < 200; i++ {
		rng.FillNormal(x, 2, 1.5)
		bn.Forward(x, true)
	}
	if math.Abs(float64(bn.RunningMean.Data[0])-2) > 0.1 {
		t.Fatalf("running mean %v, want ~2", bn.RunningMean.Data[0])
	}
	if math.Abs(float64(bn.RunningVar.Data[0])-2.25) > 0.25 {
		t.Fatalf("running var %v, want ~2.25", bn.RunningVar.Data[0])
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := tensor.NewRNG(5)
	bn := NewBatchNorm2D("bn", 1, rng)
	bn.RunningMean.Data[0] = 10
	bn.RunningVar.Data[0] = 4
	x := tensor.MustFromSlice([]float32{10, 12, 8, 10}, 1, 1, 2, 2)
	y := bn.Forward(x, false)
	// (x-10)/2 with eps tiny.
	want := []float32{0, 1, -1, 0}
	for i := range want {
		if math.Abs(float64(y.Data[i]-want[i])) > 1e-3 {
			t.Fatalf("eval BN out %v, want %v", y.Data, want)
		}
	}
}

func TestMaxPoolForwardKnown(t *testing.T) {
	pool := NewMaxPool2D("mp", 2, 2, 2, 2, 0, 0)
	x := tensor.MustFromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 1, 4, 4)
	y := pool.Forward(x, false)
	want := tensor.MustFromSlice([]float32{4, 8, 12, 16}, 1, 1, 2, 2)
	if !y.ApproxEqual(want, 0) {
		t.Fatalf("maxpool out %v, want %v", y.Data, want.Data)
	}
}

func TestMaxPoolBackwardRoutesToArgmax(t *testing.T) {
	pool := NewMaxPool2D("mp", 2, 2, 2, 2, 0, 0)
	x := tensor.MustFromSlice([]float32{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	pool.Forward(x, true)
	g := pool.Backward(tensor.MustFromSlice([]float32{7}, 1, 1, 1, 1))
	want := []float32{0, 0, 0, 7}
	for i := range want {
		if g.Data[i] != want[i] {
			t.Fatalf("maxpool grad %v, want %v", g.Data, want)
		}
	}
}

func TestAvgPoolForwardKnown(t *testing.T) {
	pool := NewAvgPool2D("ap", 2, 2, 2, 2, 0, 0)
	x := tensor.MustFromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		1, 1, 1, 1,
		1, 1, 1, 1,
	}, 1, 1, 4, 4)
	y := pool.Forward(x, false)
	want := tensor.MustFromSlice([]float32{2.5, 6.5, 1, 1}, 1, 1, 2, 2)
	if !y.ApproxEqual(want, 1e-6) {
		t.Fatalf("avgpool out %v, want %v", y.Data, want.Data)
	}
}

func TestGlobalAvgPoolKnown(t *testing.T) {
	pool := NewGlobalAvgPool("gap")
	x := tensor.MustFromSlice([]float32{1, 2, 3, 4, 10, 10, 10, 10}, 1, 2, 2, 2)
	y := pool.Forward(x, false)
	if y.Dim(1) != 2 || y.Data[0] != 2.5 || y.Data[1] != 10 {
		t.Fatalf("gap out %v shape %v", y.Data, y.Shape())
	}
}

func TestLinearForwardKnown(t *testing.T) {
	rng := tensor.NewRNG(6)
	lin := NewLinear("fc", 2, 2, rng)
	lin.Weight.Value.CopyFrom(tensor.MustFromSlice([]float32{1, 2, 3, 4}, 4))
	lin.Bias.Value.CopyFrom(tensor.MustFromSlice([]float32{10, 20}, 2))
	x := tensor.MustFromSlice([]float32{1, 1}, 1, 2)
	y := lin.Forward(x, false)
	// y = [1+2+10, 3+4+20]
	if y.Data[0] != 13 || y.Data[1] != 27 {
		t.Fatalf("linear out %v", y.Data)
	}
}

func TestReLUForward(t *testing.T) {
	r := NewReLU("r")
	x := tensor.MustFromSlice([]float32{-1, 0, 2, -3}, 4)
	y := r.Forward(x, true)
	want := []float32{0, 0, 2, 0}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("relu out %v", y.Data)
		}
	}
}

func TestPropReLUNonNegative(t *testing.T) {
	r := NewReLU("r")
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		x := tensor.MustFromSlice(append([]float32(nil), vals...), len(vals))
		y := r.Forward(x, true)
		for i, v := range y.Data {
			if v < 0 {
				return false
			}
			if x.Data[i] > 0 && v != x.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDropoutTrainEval(t *testing.T) {
	rng := tensor.NewRNG(7)
	d := NewDropout("d", 0.5, rng)
	x := tensor.Ones(10000)
	y := d.Forward(x, true)
	zeros := 0
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		case 2: // survivors scaled by 1/(1-0.5)
		default:
			t.Fatalf("dropout value %v, want 0 or 2", v)
		}
	}
	frac := float64(zeros) / float64(x.Len())
	if math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("dropped fraction %v, want ~0.5", frac)
	}
	// Eval mode is identity (same tensor back).
	if d.Forward(x, false) != x {
		t.Fatal("eval dropout should return input unchanged")
	}
	g := d.Backward(tensor.Ones(10000))
	if g.Len() != 10000 {
		t.Fatal("eval backward should pass gradient through")
	}
}

func TestDropoutBackwardUsesMask(t *testing.T) {
	rng := tensor.NewRNG(8)
	d := NewDropout("d", 0.5, rng)
	x := tensor.Ones(1000)
	y := d.Forward(x, true)
	g := d.Backward(tensor.Ones(1000))
	for i := range g.Data {
		if (y.Data[i] == 0) != (g.Data[i] == 0) {
			t.Fatal("backward mask disagrees with forward mask")
		}
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	ce := NewSoftmaxCrossEntropy()
	logits := tensor.MustFromSlice([]float32{0, 0, 0, 0}, 1, 4)
	loss, err := ce.Forward(logits, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("uniform CE loss %v, want ln(4)=%v", loss, math.Log(4))
	}
	grad := ce.Backward()
	// grad = softmax - onehot = [.25 .25 -.75 .25]
	want := []float32{0.25, 0.25, -0.75, 0.25}
	for i := range want {
		if math.Abs(float64(grad.Data[i]-want[i])) > 1e-6 {
			t.Fatalf("CE grad %v, want %v", grad.Data, want)
		}
	}
}

func TestSoftmaxCrossEntropyErrors(t *testing.T) {
	ce := NewSoftmaxCrossEntropy()
	if _, err := ce.Forward(tensor.New(2, 3), []int{0}); err == nil {
		t.Fatal("label count mismatch should error")
	}
	if _, err := ce.Forward(tensor.New(1, 3), []int{3}); err == nil {
		t.Fatal("out-of-range label should error")
	}
	if _, err := ce.Forward(tensor.New(6), []int{0}); err == nil {
		t.Fatal("1-D logits should error")
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.MustFromSlice([]float32{
		1, 5, 2, // argmax 1
		9, 0, 0, // argmax 0
		1, 2, 3, // argmax 2
	}, 3, 3)
	if got := Accuracy(logits, []int{1, 0, 0}); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("accuracy %v, want 2/3", got)
	}
	if got := TopKAccuracy(logits, []int{2, 1, 0}, 2); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("top-2 accuracy %v, want 2/3", got)
	}
	if got := TopKAccuracy(logits, []int{0, 0, 0}, 3); got != 1 {
		t.Fatalf("top-3 accuracy %v, want 1", got)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten("fl")
	x := tensor.New(2, 3, 4, 5)
	y := f.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 60 {
		t.Fatalf("flatten shape %v", y.Shape())
	}
	g := f.Backward(tensor.New(2, 60))
	if g.NumDims() != 4 || g.Dim(3) != 5 {
		t.Fatalf("unflatten shape %v", g.Shape())
	}
}

func TestFlattenUnflattenGradsRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(9)
	net := NewSequential("n",
		NewConv2D("c", 1, 2, 3, 3, 1, 1, 1, 1, ConvOpts{Bias: true}, rng),
		NewLinear("fc", 4, 3, rng),
	)
	ps := net.Params()
	n := ParamCount(ps)
	for _, p := range ps {
		rng.FillNormal(p.Grad, 0, 1)
	}
	flat := make([]float32, n)
	if err := FlattenGrads(ps, flat); err != nil {
		t.Fatal(err)
	}
	saved := make([][]float32, len(ps))
	for i, p := range ps {
		saved[i] = append([]float32(nil), p.Grad.Data...)
		p.Grad.Zero()
	}
	if err := UnflattenGrads(ps, flat); err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		for j := range p.Grad.Data {
			if p.Grad.Data[j] != saved[i][j] {
				t.Fatal("grad flatten/unflatten not a round trip")
			}
		}
	}
	// Size mismatch errors.
	if err := FlattenGrads(ps, make([]float32, n-1)); err == nil {
		t.Fatal("short dst should error")
	}
	if err := UnflattenGrads(ps, make([]float32, n+1)); err == nil {
		t.Fatal("long src should error")
	}
}

func TestFlattenValuesRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(10)
	net := NewSequential("n", NewLinear("fc", 3, 2, rng))
	ps := net.Params()
	n := ParamCount(ps)
	flat := make([]float32, n)
	if err := FlattenValues(ps, flat); err != nil {
		t.Fatal(err)
	}
	orig := append([]float32(nil), flat...)
	for _, p := range ps {
		p.Value.Zero()
	}
	if err := UnflattenValues(ps, orig); err != nil {
		t.Fatal(err)
	}
	flat2 := make([]float32, n)
	if err := FlattenValues(ps, flat2); err != nil {
		t.Fatal(err)
	}
	for i := range flat2 {
		if flat2[i] != orig[i] {
			t.Fatal("values flatten/unflatten not a round trip")
		}
	}
}

func TestCopyValues(t *testing.T) {
	rng := tensor.NewRNG(11)
	a := NewLinear("a", 3, 2, rng)
	b := NewLinear("b", 3, 2, rng)
	if err := CopyValues(b.Params(), a.Params()); err != nil {
		t.Fatal(err)
	}
	for i := range a.Weight.Value.Data {
		if b.Weight.Value.Data[i] != a.Weight.Value.Data[i] {
			t.Fatal("CopyValues did not copy weights")
		}
	}
	c := NewLinear("c", 4, 2, rng)
	if err := CopyValues(c.Params(), a.Params()); err == nil {
		t.Fatal("mismatched shapes should error")
	}
}

func TestZeroGrads(t *testing.T) {
	rng := tensor.NewRNG(12)
	l := NewLinear("fc", 3, 2, rng)
	rng.FillNormal(l.Weight.Grad, 1, 1)
	ZeroGrads(l.Params())
	if l.Weight.Grad.Sum() != 0 || l.Bias.Grad.Sum() != 0 {
		t.Fatal("ZeroGrads left nonzero gradients")
	}
}

func TestSequentialParamsAndNames(t *testing.T) {
	rng := tensor.NewRNG(13)
	net := NewSequential("net",
		NewConv2D("c1", 1, 2, 3, 3, 1, 1, 1, 1, ConvOpts{Bias: true}, rng),
		NewBatchNorm2D("bn1", 2, rng),
		NewReLU("r1"),
	)
	ps := net.Params()
	if len(ps) != 4 { // conv w+b, bn gamma+beta
		t.Fatalf("param count %d, want 4", len(ps))
	}
	if net.Name() != "net" {
		t.Fatal("wrong name")
	}
	net.Append(NewReLU("r2"))
	if len(net.Layers) != 4 {
		t.Fatal("Append failed")
	}
	// NoWeightDecay marking: biases and BN params only.
	decayable := 0
	for _, p := range ps {
		if !p.NoWeightDecay {
			decayable++
		}
	}
	if decayable != 1 {
		t.Fatalf("decayable params %d, want 1 (conv weight)", decayable)
	}
}
