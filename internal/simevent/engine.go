// Package simevent is a discrete-event simulator for the repository's
// collectives: it replays the wire schedules extracted from the live
// allreduce implementations (allreduce.BucketRingSchedule and friends) over
// a virtual clock, predicting step time, per-link-class traffic, and fabric
// congestion at scales the goroutine-per-rank worlds cannot reach — 64
// nodes × 8 ranks sweeps take seconds instead of machines.
//
// The time model mirrors mpi's topology transport exactly:
//
//   - an intra-node message delays Intra.Delay(bytes) with no serialization
//     (shared memory has no single bottleneck link);
//   - an inter-node message serializes through the sender's egress queue —
//     one NIC share per rank — and delays Inter.Delay(bytes) once the queue
//     reaches it;
//   - a blocking send occupies the sender until its transfer completes, a
//     non-blocking send only until the next event;
//   - a receive blocks until the matching message arrives, where matching is
//     the transport's rule: per-(source, tag) FIFO;
//   - every completed operation additionally pays HostOverhead, the
//     calibrated per-message software cost (encode, matching, scheduling),
//     optionally jittered by a seeded per-rank RNG.
//
// Byte accounting never depends on HostOverhead, jitter, or the seed: a
// schedule's traffic is a function of the schedule alone, which is what the
// determinism and cross-validation suites pin. The engine is
// single-threaded and breaks event-time ties by insertion order, so a run
// is a pure function of (schedules, Config) — byte-identical traces on
// every replay.
package simevent

import (
	"fmt"
	"time"

	"repro/internal/allreduce"
	"repro/internal/mpi"
	"repro/internal/simnet"
)

// Config parameterizes one simulated collective step.
type Config struct {
	// Topo maps ranks onto nodes (mpi.Topology.Validate rules apply). The
	// rank count is len(Topo.Node).
	Topo mpi.Topology
	// Intra and Inter are the two link classes' profiles, the same values a
	// live mpi.NewTopologyWorld would be built with.
	Intra, Inter mpi.LinkProfile
	// HostOverhead is the per-operation software cost added to every
	// completed wire op — the calibrated residual between pure link delays
	// and measured wall time.
	HostOverhead time.Duration
	// JitterFrac spreads HostOverhead uniformly in ±JitterFrac around its
	// nominal value, per operation, from a per-rank RNG seeded by Seed.
	// Jitter perturbs timing only; byte totals are seed-independent.
	JitterFrac float64
	// Seed drives the jitter RNG. Two runs with equal Config (including
	// Seed) produce byte-identical traces and results.
	Seed uint64
	// Fabric, when non-nil, attributes every inter-node message to the
	// fat-tree links its route traverses (node = fat-tree host, rail =
	// sending rank mod Rails) for the utilization and hot-spot report.
	// Accounting only: timing always comes from the Intra/Inter profiles.
	Fabric *simnet.FatTree
	// Record retains the full event trace in Result.Trace (the trace hash
	// is always computed).
	Record bool
}

// RankStats is one rank's simulated outcome.
type RankStats struct {
	// Finish is when the rank's last operation (either stream) completed.
	Finish time.Duration `json:"finish_ns"`
	// SentBytes and RecvBytes are the rank's wire totals.
	SentBytes int64 `json:"sent_bytes"`
	RecvBytes int64 `json:"recv_bytes"`
}

// LinkUtil is one fabric link's share of the step (Config.Fabric set).
type LinkUtil struct {
	Link  int    `json:"link"`
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
	// BusySeconds is the serialization time the link's own bandwidth implies
	// for its bytes; Utilization is that over the step's makespan. Values
	// above 1 mean the link is oversubscribed — a congestion hot spot the
	// flow-level profiles do not slow down (see the package comment on what
	// is not modeled).
	BusySeconds float64 `json:"busy_seconds"`
	Utilization float64 `json:"utilization"`
}

// TraceEvent is one executed wire operation (Config.Record).
type TraceEvent struct {
	At    time.Duration `json:"at_ns"`
	Rank  int           `json:"rank"`
	Kind  string        `json:"kind"`
	Peer  int           `json:"peer"`
	Tag   int           `json:"tag"`
	Bytes int           `json:"bytes"`
}

// Result is one simulated step.
type Result struct {
	// Makespan is the virtual time from step start to the last completion
	// or delivery — the predicted step communication time.
	Makespan time.Duration `json:"makespan_ns"`
	// Traffic is the per-link-class byte total, directly comparable to a
	// live world's mpi.World.Traffic.
	Traffic mpi.Traffic `json:"traffic"`
	// Messages is the number of wire messages sent.
	Messages int `json:"messages"`
	// PerRank has one entry per rank.
	PerRank []RankStats `json:"per_rank"`
	// Links lists every fabric link that carried traffic, ascending link id
	// (empty without Config.Fabric).
	Links []LinkUtil `json:"links,omitempty"`
	// TraceHash fingerprints the full event trace (operation tuples and
	// their virtual times, in execution order).
	TraceHash uint64 `json:"trace_hash"`
	// Trace is the full event trace when Config.Record is set.
	Trace []TraceEvent `json:"trace,omitempty"`
}

// stream is one rank's launch or main program counter.
type stream struct {
	rank      int
	ops       []allreduce.WireOp
	pc        int
	blockedAt int64 // virtual time the pending recv started waiting
}

// msgKey identifies a FIFO message queue: the transport matches receives
// per (source, tag), and the engine additionally splits by destination.
type msgKey struct {
	src, dst, tag int
}

// msgQueue is one (src, dst, tag) FIFO: arrival times in send order, the
// count already consumed by receives, and the at-most-one blocked receiver
// (a destination's main stream consumes any given queue sequentially).
type msgQueue struct {
	arrivals []int64
	taken    int
	waiter   *stream
}

// event is a scheduled stream continuation. seq breaks time ties in
// insertion order, making the engine's schedule total and deterministic.
type event struct {
	at  int64
	seq uint64
	st  *stream
}

type engine struct {
	cfg      Config
	node     []int
	heap     []event
	seq      uint64
	inbox    map[msgKey]*msgQueue
	egress   []int64 // per-rank inter-node egress availability
	rng      []uint64
	perRank  []RankStats
	traffic  mpi.Traffic
	messages int
	maxT     int64
	hash     uint64
	trace    []TraceEvent
	linkB    []int64
	linkBusy []float64
}

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// splitmix64 advances *s and returns the next draw — the standard SplitMix64
// generator, chosen for stateless seeding (any two seeds give independent
// streams).
func splitmix64(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Run simulates one collective step described by scheds over cfg and
// returns the predicted outcome. scheds must have one entry per rank of
// cfg.Topo. An unsatisfiable schedule (a receive whose message is never
// sent — impossible for the extracted collectives, possible for hand-built
// ones) returns a deadlock error naming the first stuck rank.
func Run(scheds []allreduce.RankSchedule, cfg Config) (*Result, error) {
	n := len(scheds)
	if err := cfg.Topo.Validate(n); err != nil {
		return nil, fmt.Errorf("simevent: %w", err)
	}
	if cfg.Fabric != nil && cfg.Topo.Nodes() > cfg.Fabric.Hosts {
		return nil, fmt.Errorf("simevent: topology has %d nodes but fabric only %d hosts", cfg.Topo.Nodes(), cfg.Fabric.Hosts)
	}
	e := &engine{
		cfg:     cfg,
		node:    cfg.Topo.Node,
		inbox:   make(map[msgKey]*msgQueue),
		egress:  make([]int64, n),
		rng:     make([]uint64, n),
		perRank: make([]RankStats, n),
		hash:    fnvOffset,
	}
	for r := range e.rng {
		e.rng[r] = cfg.Seed ^ (uint64(r+1) * 0x9E3779B97F4A7C15)
	}
	if cfg.Fabric != nil {
		e.linkB = make([]int64, cfg.Fabric.NumLinks())
		e.linkBusy = make([]float64, cfg.Fabric.NumLinks())
	}

	streams := make([]*stream, 0, 2*n)
	for r, sc := range scheds {
		if err := checkOps(sc.Launch, r, n, true); err != nil {
			return nil, err
		}
		if err := checkOps(sc.Main, r, n, false); err != nil {
			return nil, err
		}
		if len(sc.Launch) > 0 {
			st := &stream{rank: r, ops: sc.Launch}
			streams = append(streams, st)
			e.push(0, st)
		}
		if len(sc.Main) > 0 {
			st := &stream{rank: r, ops: sc.Main}
			streams = append(streams, st)
			e.push(0, st)
		}
	}

	for len(e.heap) > 0 {
		ev := e.pop()
		e.exec(ev.st, ev.at)
	}
	for _, st := range streams {
		if st.pc < len(st.ops) {
			op := st.ops[st.pc]
			return nil, fmt.Errorf("simevent: deadlock: rank %d stuck at op %d (%s peer %d tag %d) — no matching message",
				st.rank, st.pc, op.Kind, op.Peer, op.Tag)
		}
	}

	res := &Result{
		Makespan:  time.Duration(e.maxT),
		Traffic:   e.traffic,
		Messages:  e.messages,
		PerRank:   e.perRank,
		TraceHash: e.hash,
		Trace:     e.trace,
	}
	if cfg.Fabric != nil {
		for l, b := range e.linkB {
			if b == 0 {
				continue
			}
			u := LinkUtil{Link: l, Name: cfg.Fabric.LinkName(simnet.LinkID(l)), Bytes: b, BusySeconds: e.linkBusy[l]}
			if res.Makespan > 0 {
				u.Utilization = u.BusySeconds / res.Makespan.Seconds()
			}
			res.Links = append(res.Links, u)
		}
	}
	return res, nil
}

// checkOps validates one stream's ops against the world size. Launch
// streams model the live pipelines' asynchronous send goroutines and may
// not block on receives.
func checkOps(ops []allreduce.WireOp, rank, n int, launch bool) error {
	for i, op := range ops {
		if op.Peer < 0 || op.Peer >= n {
			return fmt.Errorf("simevent: rank %d op %d: peer %d outside %d ranks", rank, i, op.Peer, n)
		}
		if op.Bytes < 0 {
			return fmt.Errorf("simevent: rank %d op %d: negative size %d", rank, i, op.Bytes)
		}
		if launch && op.Kind == allreduce.WireRecv {
			return fmt.Errorf("simevent: rank %d launch op %d: receives must live on the main stream", rank, i)
		}
	}
	return nil
}

func (e *engine) push(at int64, st *stream) {
	e.seq++
	e.heap = append(e.heap, event{at: at, seq: e.seq, st: st})
	i := len(e.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !e.less(i, p) {
			break
		}
		e.heap[i], e.heap[p] = e.heap[p], e.heap[i]
		i = p
	}
}

func (e *engine) pop() event {
	top := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && e.less(l, s) {
			s = l
		}
		if r < last && e.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		e.heap[i], e.heap[s] = e.heap[s], e.heap[i]
		i = s
	}
	return top
}

func (e *engine) less(i, j int) bool {
	a, b := e.heap[i], e.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// exec runs the stream's current op at virtual time now.
func (e *engine) exec(st *stream, now int64) {
	op := st.ops[st.pc]
	switch op.Kind {
	case allreduce.WireIsend:
		e.post(st.rank, op, now)
		e.complete(st, now)
	case allreduce.WireSend:
		done := e.post(st.rank, op, now)
		e.complete(st, done)
	case allreduce.WireRecv:
		q := e.queue(op.Peer, st.rank, op.Tag)
		if q.taken >= len(q.arrivals) {
			q.waiter = st
			st.blockedAt = now
			return
		}
		a := q.arrivals[q.taken]
		q.taken++
		done := max(now, a)
		e.perRank[st.rank].RecvBytes += int64(op.Bytes)
		e.record(st.rank, op, done)
		e.complete(st, done)
	default:
		panic(fmt.Sprintf("simevent: unknown wire kind %d", op.Kind))
	}
}

// complete finishes the stream's current op at virtual time at, charges
// the host overhead, and schedules the next op.
func (e *engine) complete(st *stream, at int64) {
	at += e.overhead(st.rank)
	if at > e.maxT {
		e.maxT = at
	}
	if d := time.Duration(at); d > e.perRank[st.rank].Finish {
		e.perRank[st.rank].Finish = d
	}
	st.pc++
	if st.pc < len(st.ops) {
		e.push(at, st)
	}
}

// overhead draws the (possibly jittered) per-op host cost for a rank.
func (e *engine) overhead(rank int) int64 {
	h := int64(e.cfg.HostOverhead)
	if h <= 0 {
		return 0
	}
	if e.cfg.JitterFrac <= 0 {
		return h
	}
	u := float64(splitmix64(&e.rng[rank])>>11) / (1 << 53) // [0, 1)
	return int64(float64(h) * (1 + e.cfg.JitterFrac*(2*u-1)))
}

// post charges and delivers one message from rank at virtual time now,
// returning when the sender's transfer completes (what a blocking send
// waits for). Mirrors topoTransport.charge: intra-node messages delay
// concurrently; inter-node messages serialize through the sender's egress.
func (e *engine) post(rank int, op allreduce.WireOp, now int64) int64 {
	dst := op.Peer
	e.messages++
	e.perRank[rank].SentBytes += int64(op.Bytes)
	var arrival int64
	if e.node[rank] == e.node[dst] {
		e.traffic.IntraBytes += int64(op.Bytes)
		arrival = now + int64(e.cfg.Intra.Delay(op.Bytes))
	} else {
		e.traffic.InterBytes += int64(op.Bytes)
		d := int64(e.cfg.Inter.Delay(op.Bytes))
		if d > 0 {
			start := max(now, e.egress[rank])
			arrival = start + d
			e.egress[rank] = arrival
		} else {
			arrival = now
		}
		if f := e.cfg.Fabric; f != nil {
			links, err := f.Route(e.node[rank], e.node[dst], rank%f.Rails)
			if err == nil { // bounds pre-validated in Run
				for _, l := range links {
					e.linkB[l] += int64(op.Bytes)
					e.linkBusy[l] += float64(op.Bytes) / f.Bandwidth(l)
				}
			}
		}
	}
	e.record(rank, op, now)
	if arrival > e.maxT {
		e.maxT = arrival
	}
	q := e.queue(rank, dst, op.Tag)
	q.arrivals = append(q.arrivals, arrival)
	if q.waiter != nil {
		w := q.waiter
		q.waiter = nil
		e.push(max(arrival, w.blockedAt), w)
	}
	return arrival
}

func (e *engine) queue(src, dst, tag int) *msgQueue {
	k := msgKey{src: src, dst: dst, tag: tag}
	q := e.inbox[k]
	if q == nil {
		q = &msgQueue{}
		e.inbox[k] = q
	}
	return q
}

// record folds one executed operation into the trace hash (FNV-1a over the
// op tuple and its virtual time) and, under Config.Record, the trace.
func (e *engine) record(rank int, op allreduce.WireOp, at int64) {
	h := e.hash
	for _, v := range [6]uint64{uint64(op.Kind), uint64(rank), uint64(op.Peer), uint64(op.Tag), uint64(op.Bytes), uint64(at)} {
		h ^= v
		h *= fnvPrime
	}
	e.hash = h
	if e.cfg.Record {
		e.trace = append(e.trace, TraceEvent{
			At: time.Duration(at), Rank: rank, Kind: op.Kind.String(),
			Peer: op.Peer, Tag: op.Tag, Bytes: op.Bytes,
		})
	}
}
