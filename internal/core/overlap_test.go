package core

import (
	"testing"

	"repro/internal/allreduce"
	"repro/internal/compress"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/sgd"
)

// runOverlap trains the standard small synthetic workload with the given
// compression config and overlap switch.
func runOverlap(t *testing.T, comp compress.Config, overlap bool, learners, devices, steps, inFlight int) *ClusterResult {
	t.Helper()
	const classes, size = 3, 8
	dataX, dataLabels := SyntheticTensorData(24, classes, size, 23)
	res, err := RunCluster(ClusterConfig{
		Learners:       learners,
		DevicesPerNode: devices,
		NewReplica:     func(seed int64) nn.Layer { return bnFreeCNN(classes, size, 500+seed) },
		NewSource: func(rank int) BatchSource {
			return &SliceSource{X: dataX, Labels: dataLabels, Rank: rank, Ranks: learners}
		},
		Steps:  steps,
		InputC: 3, InputH: size, InputW: size,
		Learner: Config{
			BatchPerDevice:  12 / (learners * devices),
			Allreduce:       allreduce.AlgMultiColor,
			Schedule:        sgd.Const(0.1),
			SGD:             sgd.DefaultConfig(),
			Compression:     comp,
			Overlap:         overlap,
			OverlapInFlight: inFlight,
		},
	})
	if err != nil {
		t.Fatalf("overlap=%v compression=%+v: %v", overlap, comp, err)
	}
	return res
}

// TestOverlapMatchesPhasedBitwise is the serial-vs-overlapped equivalence
// statement of the reactive pipeline: hiding the bucketed allreduce under
// backward compute is a pure scheduling change, so after many steps on a
// multi-learner, multi-device cluster the parameters must be bitwise
// identical to the phased path — under the exact identity codec and under
// lossy int8/top-k (with and without error feedback) alike.
func TestOverlapMatchesPhasedBitwise(t *testing.T) {
	const learners, devices, steps = 3, 2, 12
	for _, tc := range []struct {
		name    string
		phased  compress.Config
		overlap compress.Config
	}{
		// Overlap with no codec configured runs the identity codec over the
		// bucketed transport — the phased twin is Codec "none".
		{"uncompressed", compress.Config{Codec: "none", BucketFloats: 512}, compress.Config{BucketFloats: 512}},
		{"int8", compress.Config{Codec: "int8", BucketFloats: 512}, compress.Config{Codec: "int8", BucketFloats: 512}},
		{"topk-ef", compress.Config{Codec: "topk", TopKRatio: 0.25, ErrorFeedback: true, BucketFloats: 512},
			compress.Config{Codec: "topk", TopKRatio: 0.25, ErrorFeedback: true, BucketFloats: 512}},
		// A bucket size that splits parameters mid-tensor stresses the
		// range bookkeeping.
		{"int8-tiny-buckets", compress.Config{Codec: "int8", BucketFloats: 37}, compress.Config{Codec: "int8", BucketFloats: 37}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			phased := runOverlap(t, tc.phased, false, learners, devices, steps, 0)
			overlapped := runOverlap(t, tc.overlap, true, learners, devices, steps, 3)
			for r := 0; r < learners; r++ {
				if len(phased.FinalWeights[r]) != len(overlapped.FinalWeights[r]) {
					t.Fatalf("rank %d weight counts differ", r)
				}
				for i := range phased.FinalWeights[r] {
					if phased.FinalWeights[r][i] != overlapped.FinalWeights[r][i] {
						t.Fatalf("rank %d weight[%d]: phased %v, overlapped %v",
							r, i, phased.FinalWeights[r][i], overlapped.FinalWeights[r][i])
					}
				}
			}
			// Identical wire traffic, too: same payloads, different schedule.
			if phased.CommStats[0] != overlapped.CommStats[0] {
				t.Fatalf("comm stats: phased %+v, overlapped %+v", phased.CommStats[0], overlapped.CommStats[0])
			}
		})
	}
}

// TestOverlapLearnersStayInSync: the synchronous-SGD invariant holds under
// the reactive pipeline — every learner ends bitwise identical.
func TestOverlapLearnersStayInSync(t *testing.T) {
	res := runOverlap(t, compress.Config{Codec: "int8", BucketFloats: 256}, true, 4, 1, 8, 2)
	ref := res.FinalWeights[0]
	for r := 1; r < 4; r++ {
		for i := range ref {
			if res.FinalWeights[r][i] != ref[i] {
				t.Fatalf("learner %d weight[%d] = %v, learner 0 has %v", r, i, res.FinalWeights[r][i], ref[i])
			}
		}
	}
}

// TestOverlapConverges: the overlapped stack must actually learn.
func TestOverlapConverges(t *testing.T) {
	res := runOverlap(t, compress.Config{}, true, 2, 2, 60, 0)
	losses := res.Losses[0]
	first, last := losses[0], losses[len(losses)-1]
	if !(last < first/2) {
		t.Fatalf("overlapped training stalled: %v -> %v", first, last)
	}
}

// TestOverlapAccountsTraffic: the reactive path must report allreduce wire
// bytes through both CommStats and the engine's Stats, like the phased
// compressed path does.
func TestOverlapAccountsTraffic(t *testing.T) {
	dataX, dataLabels := SyntheticTensorData(8, 2, 8, 1)
	w := mpi.NewWorld(2)
	defer w.Close()
	err := w.Run(func(c *mpi.Comm) error {
		l, err := NewLearner(c, []nn.Layer{bnFreeCNN(2, 8, int64(c.Rank())+1)},
			&SliceSource{X: dataX, Labels: dataLabels, Rank: c.Rank(), Ranks: 2},
			3, 8, 8,
			Config{BatchPerDevice: 2, Overlap: true, Compression: compress.Config{BucketFloats: 128}})
		if err != nil {
			return err
		}
		defer l.Close()
		if _, err := l.Step(); err != nil {
			return err
		}
		cs := l.CommStats()
		if cs.BytesSent == 0 || cs.Buckets == 0 {
			t.Errorf("comm stats empty: %+v", cs)
		}
		if st := l.Engine().Stats(); st.AllReduceBytes != cs.BytesSent+cs.BytesRecv {
			t.Errorf("engine AllReduceBytes %d, comm stats %d", st.AllReduceBytes, cs.BytesSent+cs.BytesRecv)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOverlapRejectsUnknownCodec: overlap still validates the codec.
func TestOverlapRejectsUnknownCodec(t *testing.T) {
	w := mpi.NewWorld(1)
	defer w.Close()
	err := w.Run(func(c *mpi.Comm) error {
		_, err := NewLearner(c, []nn.Layer{bnFreeCNN(2, 8, 1)}, nil, 3, 8, 8,
			Config{BatchPerDevice: 2, Overlap: true, Compression: compress.Config{Codec: "bogus"}})
		if err == nil {
			t.Error("unknown codec should fail construction")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
