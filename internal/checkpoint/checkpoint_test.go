package checkpoint

import (
	"bytes"
	"testing"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/sgd"
	"repro/internal/tensor"
)

func trainedModel(t *testing.T, seed int64) (*nn.Sequential, *sgd.SGD) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	net := models.NewSmallCNN(3, 8, rng)
	opt := sgd.New(net.Params(), sgd.DefaultConfig())
	// A few steps so both weights and momentum are non-trivial.
	x := tensor.New(4, 3, 8, 8)
	rng.FillNormal(x, 0, 1)
	labels := []int{0, 1, 2, 0}
	ce := nn.NewSoftmaxCrossEntropy()
	for i := 0; i < 5; i++ {
		nn.ZeroGrads(net.Params())
		out := net.Forward(x, true)
		if _, err := ce.Forward(out, labels); err != nil {
			t.Fatal(err)
		}
		net.Backward(ce.Backward())
		opt.Step(0.05)
	}
	return net, opt
}

func TestCaptureRestoreRoundTrip(t *testing.T) {
	net, opt := trainedModel(t, 1)
	ck, err := Capture(net.Params(), opt, 500, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh model with the same architecture but different weights.
	net2, opt2 := trainedModel(t, 2)
	if err := ck.Restore(net2.Params(), opt2); err != nil {
		t.Fatal(err)
	}
	for i, p := range net.Params() {
		p2 := net2.Params()[i]
		for j := range p.Value.Data {
			if p.Value.Data[j] != p2.Value.Data[j] {
				t.Fatalf("param %d elem %d differs after restore", i, j)
			}
		}
	}
	// Momentum restored: the next identical update must match exactly.
	g := make([]float32, nn.ParamCount(net.Params()))
	for i := range g {
		g[i] = float32(i%11) * 0.01
	}
	if err := nn.UnflattenGrads(net.Params(), g); err != nil {
		t.Fatal(err)
	}
	if err := nn.UnflattenGrads(net2.Params(), g); err != nil {
		t.Fatal(err)
	}
	opt.Step(0.03)
	opt2.Step(0.03)
	for i, p := range net.Params() {
		p2 := net2.Params()[i]
		for j := range p.Value.Data {
			if p.Value.Data[j] != p2.Value.Data[j] {
				t.Fatal("momentum state not restored: updates diverge")
			}
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	net, opt := trainedModel(t, 3)
	ck, err := Capture(net.Params(), opt, 42, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ck.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 42 || got.Epoch != 1.25 {
		t.Fatalf("counters %d/%v, want 42/1.25", got.Step, got.Epoch)
	}
	net2, opt2 := trainedModel(t, 4)
	if err := got.Restore(net2.Params(), opt2); err != nil {
		t.Fatal(err)
	}
	for i, p := range net.Params() {
		p2 := net2.Params()[i]
		for j := range p.Value.Data {
			if p.Value.Data[j] != p2.Value.Data[j] {
				t.Fatal("weights differ after disk round trip")
			}
		}
	}
}

func TestRestoreRejectsWrongArchitecture(t *testing.T) {
	net, opt := trainedModel(t, 5)
	ck, err := Capture(net.Params(), opt, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	other := models.NewTinyResNet(3, 1, tensor.NewRNG(6))
	if err := ck.Restore(other.Params(), nil); err == nil {
		t.Fatal("restoring into a different architecture must fail")
	}
	// Same shapes but different names must also fail.
	renamed := models.NewSmallCNN(3, 8, tensor.NewRNG(7))
	renamed.Params()[0].Name = "impostor"
	if err := ck.Restore(renamed.Params(), nil); err == nil {
		t.Fatal("name mismatch must fail")
	}
}

func TestCaptureWithoutOptimizer(t *testing.T) {
	net, _ := trainedModel(t, 8)
	ck, err := Capture(net.Params(), nil, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ck.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	net2, _ := trainedModel(t, 9)
	if err := got.Restore(net2.Params(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty reader should error")
	}
	if _, err := Read(bytes.NewReader(make([]byte, 28))); err == nil {
		t.Fatal("bad magic should error")
	}
	net, opt := trainedModel(t, 10)
	ck, _ := Capture(net.Params(), opt, 0, 0)
	var buf bytes.Buffer
	ck.WriteTo(&buf)
	full := buf.Bytes()
	if _, err := Read(bytes.NewReader(full[:len(full)/3])); err == nil {
		t.Fatal("truncated checkpoint should error")
	}
}

func TestCheckpointWithLARS(t *testing.T) {
	// The Optimizer interface must accept LARS too: capture under one LARS
	// instance and restore into another with exact state equality.
	rng := tensor.NewRNG(20)
	net := models.NewSmallCNN(3, 8, rng)
	lars := sgd.NewLARS(net.Params(), sgd.DefaultConfig(), 0.01)
	// Create momentum by stepping once on synthetic gradients.
	for _, p := range net.Params() {
		rng.FillNormal(p.Grad, 0, 1)
	}
	lars.Step(0.1)
	ck, err := Capture(net.Params(), lars, 7, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	net2 := models.NewSmallCNN(3, 8, tensor.NewRNG(21))
	lars2 := sgd.NewLARS(net2.Params(), sgd.DefaultConfig(), 0.01)
	if err := ck.Restore(net2.Params(), lars2); err != nil {
		t.Fatal(err)
	}
	// Identical next updates prove the momentum round-tripped.
	for i, p := range net.Params() {
		copy(net2.Params()[i].Grad.Data, p.Grad.Data)
	}
	lars.Step(0.1)
	lars2.Step(0.1)
	for i, p := range net.Params() {
		p2 := net2.Params()[i]
		for j := range p.Value.Data {
			if p.Value.Data[j] != p2.Value.Data[j] {
				t.Fatal("LARS state not restored: updates diverge")
			}
		}
	}
}

func TestSGDStateExportImportErrors(t *testing.T) {
	net, opt := trainedModel(t, 11)
	n := nn.ParamCount(net.Params())
	if opt.StateLen() != n {
		t.Fatalf("StateLen %d, want %d", opt.StateLen(), n)
	}
	if err := opt.ExportState(make([]float32, n-1)); err == nil {
		t.Fatal("short export should error")
	}
	if err := opt.ImportState(make([]float32, n+1)); err == nil {
		t.Fatal("long import should error")
	}
}
