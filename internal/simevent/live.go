package simevent

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/allreduce"
	"repro/internal/compress"
	"repro/internal/mpi"
)

// LiveCase describes one small-scale live run of a collective — the
// measurement side of calibration and cross-validation. The same fields
// drive the corresponding Spec, so simulated and measured runs are
// parameterized identically by construction.
type LiveCase struct {
	Collective   Collective
	Nodes        int
	RanksPerNode int
	Elems        int
	BucketFloats int
	// Codec configures the hierarchical/sharded codec (zero value = the
	// identity "none" path); ignored by the raw-wire collectives.
	Codec compress.Config
	// Intra and Inter are the world's link profiles; zero values cost no
	// wall time but still count bytes — the cross-validation configuration.
	Intra, Inter mpi.LinkProfile
}

// Topo returns the case's rank→node layout.
func (lc LiveCase) Topo() mpi.Topology {
	return mpi.UniformTopology(lc.Nodes*lc.RanksPerNode, lc.RanksPerNode)
}

// Spec returns the simulation spec matching the live case.
func (lc LiveCase) Spec() (Spec, error) {
	codec, err := compress.New(lc.Codec)
	if err != nil {
		return Spec{}, err
	}
	return Spec{
		Collective:   lc.Collective,
		Topo:         lc.Topo(),
		Elems:        lc.Elems,
		BucketFloats: lc.BucketFloats,
		Codec:        codec,
	}, nil
}

// LiveResult is one measured collective step.
type LiveResult struct {
	// Wall is the world's wall time for the step (goroutine spawn to last
	// rank done).
	Wall time.Duration
	// Traffic is the world's per-link-class byte count for the step.
	Traffic mpi.Traffic
}

// RunLive executes the case's collective once on a real topology world —
// one goroutine per rank, the profiled transport charging every message —
// and returns measured wall time and exact wire-byte counters.
func RunLive(lc LiveCase) (LiveResult, error) {
	ranks := lc.Nodes * lc.RanksPerNode
	if ranks <= 0 {
		return LiveResult{}, fmt.Errorf("simevent: live case has %d ranks", ranks)
	}
	topo := lc.Topo()
	codec, err := compress.New(lc.Codec)
	if err != nil {
		return LiveResult{}, err
	}
	w, err := mpi.NewTopologyWorld(ranks, topo, lc.Intra, lc.Inter)
	if err != nil {
		return LiveResult{}, err
	}
	defer w.Close()
	start := time.Now()
	err = w.Run(func(c *mpi.Comm) error {
		data := make([]float32, lc.Elems)
		for i := range data {
			data[i] = float32((i+c.Rank())%97) * 0.125
		}
		switch lc.Collective {
		case BucketRing:
			return allreduce.AllReduce(c, data, allreduce.AlgBucketRing, allreduce.Options{})
		case Rabenseifner:
			return allreduce.AllReduce(c, data, allreduce.AlgRabenseifner, allreduce.Options{})
		case Hierarchical:
			_, err := allreduce.BucketedAllReduce(c, data, codec, allreduce.CompressedOptions{
				BucketFloats: lc.BucketFloats,
				Topology:     &topo,
			})
			return err
		case ShardedRS:
			_, err := allreduce.BucketedReduceScatter(c, data, codec, allreduce.CompressedOptions{
				BucketFloats: lc.BucketFloats,
			})
			return err
		default:
			return fmt.Errorf("simevent: unknown collective %q", lc.Collective)
		}
	})
	wall := time.Since(start)
	if err != nil {
		return LiveResult{}, err
	}
	return LiveResult{Wall: wall, Traffic: w.Traffic()}, nil
}

// MeasureLive runs the case reps times on fresh worlds (after one warmup
// run) and returns the median wall time with the per-step traffic. Median
// over fresh worlds, not mean over one world: a single scheduler hiccup
// then shifts one sample instead of the whole estimate.
func MeasureLive(lc LiveCase, reps int) (LiveResult, error) {
	if reps < 1 {
		reps = 1
	}
	if _, err := RunLive(lc); err != nil { // warmup: pools, code paths
		return LiveResult{}, err
	}
	walls := make([]time.Duration, 0, reps)
	var traffic mpi.Traffic
	for i := 0; i < reps; i++ {
		r, err := RunLive(lc)
		if err != nil {
			return LiveResult{}, err
		}
		if i > 0 && r.Traffic != traffic {
			return LiveResult{}, fmt.Errorf("simevent: live traffic varies across runs: %+v vs %+v", r.Traffic, traffic)
		}
		traffic = r.Traffic
		walls = append(walls, r.Wall)
	}
	sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
	return LiveResult{Wall: walls[len(walls)/2], Traffic: traffic}, nil
}
