package mpi

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// ErrRankDown reports that a peer rank has failed. Operations touching a
// crashed rank — sends to it, receives from it once its already-delivered
// messages drain, detection timeouts standing in for a missing heartbeat —
// return an error matching this sentinel (errors.Is) instead of hanging, so
// collectives fail cleanly on every surviving rank. The concrete type is
// *RankDownError, which carries the failed rank.
var ErrRankDown = errors.New("mpi: rank down")

var (
	errInjectedCrash = errors.New("injected crash")
	errDetectTimeout = errors.New("detection timeout")
	errReconnecting  = errors.New("reconnect in progress")
)

// RankDownError is the concrete failure-detection error: Rank identifies the
// global rank believed dead, Cause (optional) says how the failure was
// observed — an injected crash, a detection timeout, a broken TCP connection.
// It matches ErrRankDown under errors.Is.
type RankDownError struct {
	// Rank is the global rank that failed.
	Rank int
	// Cause is the underlying observation, when there is one.
	Cause error
}

// Error implements error.
func (e *RankDownError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("mpi: rank %d down: %v", e.Rank, e.Cause)
	}
	return fmt.Sprintf("mpi: rank %d down", e.Rank)
}

// Is makes every RankDownError match the ErrRankDown sentinel.
func (e *RankDownError) Is(target error) bool { return target == ErrRankDown }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *RankDownError) Unwrap() error { return e.Cause }

// DownRank extracts the failed rank from an error chain; -1 when the error
// does not describe a rank failure.
func DownRank(err error) int {
	var rd *RankDownError
	if errors.As(err, &rd) {
		return rd.Rank
	}
	return -1
}

// IsDetectTimeout reports whether err is a rank failure *presumed* from the
// detection timeout rather than confirmed by a crash. A timeout can blame a
// rank that is merely slow or itself waiting out a timeout, so recovery
// protocols whose progress is otherwise guaranteed (the sender is known
// live) should retry through these instead of treating them as fatal.
func IsDetectTimeout(err error) bool {
	var rd *RankDownError
	return errors.As(err, &rd) && errors.Is(rd.Cause, errDetectTimeout)
}

// IsReconnecting reports whether err is a TCP send failure whose bounded
// reconnect attempts ran out while the peer was not (yet) confirmed dead —
// a transient socket condition, not a failure verdict.
func IsReconnecting(err error) bool {
	var rd *RankDownError
	return errors.As(err, &rd) && errors.Is(rd.Cause, errReconnecting)
}

// IsTransient reports whether err is a PRESUMED rank failure — a detection
// timeout or a reconnect in progress — as opposed to a confirmed one (an
// injected crash, a down-marked mailbox, a refused dial after the rank was
// declared dead). Recovery protocols should retry through transient errors
// and treat only confirmed ones as membership changes.
func IsTransient(err error) bool {
	return IsDetectTimeout(err) || IsReconnecting(err)
}

// FaultPlan is a deterministic, seedable fault profile for an in-process
// world. The zero value injects nothing.
type FaultPlan struct {
	// Seed drives the message-drop hash; two runs with equal seeds drop
	// exactly the same messages.
	Seed int64
	// CrashAtStep kills rank r at the start of step CrashAtStep[r] — the
	// harness reports each step boundary via FaultInjector.Tick, which
	// returns the crash error on the victim.
	CrashAtStep map[int]int
	// DropProb silently loses each sent message with this probability
	// (deterministically, from Seed and a per-rank send counter). Lost
	// messages are how detection timeouts get exercised.
	DropProb float64
	// DetectTimeout bounds how long a Recv waits before presuming the
	// source dead and returning a RankDownError. Zero disables timeout
	// detection (crashes are still detected via down-marking).
	DetectTimeout time.Duration
	// Slow charges the listed ranks an extra LinkProfile delay on every
	// send — a straggler model layered on top of the world's links.
	Slow map[int]LinkProfile
}

// FaultInjector applies a FaultPlan to a World. Obtain one with
// World.InjectFaults before handing out communicators; the harness then
// drives its step clock with Tick.
type FaultInjector struct {
	world   *World
	plan    FaultPlan
	seq     []atomic.Uint64 // per-rank send counters for deterministic drops
	crashed []atomic.Bool
}

// InjectFaults attaches a fault plan to the world. Must be called before
// Comm: communicators created afterwards route through the injector.
func (w *World) InjectFaults(plan FaultPlan) *FaultInjector {
	inj := &FaultInjector{
		world:   w,
		plan:    plan,
		seq:     make([]atomic.Uint64, len(w.boxes)),
		crashed: make([]atomic.Bool, len(w.boxes)),
	}
	w.faults = inj
	return inj
}

// Plan returns the injector's fault plan.
func (f *FaultInjector) Plan() FaultPlan { return f.plan }

// Tick advances the injector's step clock for one rank. The harness calls it
// at the top of every training step; when the plan crashes this rank at this
// step, Tick kills the rank (sends to it and receives from it start failing
// world-wide) and returns the crash as a *RankDownError for the victim's own
// goroutine to exit with.
func (f *FaultInjector) Tick(rank, step int) error {
	if s, ok := f.plan.CrashAtStep[rank]; ok && step >= s && !f.crashed[rank].Load() {
		f.Crash(rank)
		return &RankDownError{Rank: rank, Cause: errInjectedCrash}
	}
	return nil
}

// Crash kills a rank immediately (idempotent).
func (f *FaultInjector) Crash(rank int) {
	if f.crashed[rank].Swap(true) {
		return
	}
	f.world.Crash(rank)
}

// Crashed reports whether the injector has killed the rank.
func (f *FaultInjector) Crashed(rank int) bool { return f.crashed[rank].Load() }

// drop decides — deterministically from the seed and this rank's send
// counter — whether the next message from rank is lost on the wire. A shared
// rand.Rand would make the decision depend on goroutine interleaving; the
// per-rank counter plus a mixing hash keeps equal seeds reproducible.
func (f *FaultInjector) drop(rank int) bool {
	if f.plan.DropProb <= 0 {
		return false
	}
	n := f.seq[rank].Add(1)
	h := splitmix64(uint64(f.plan.Seed) ^ uint64(rank)<<32 ^ n)
	return float64(h>>11)/(1<<53) < f.plan.DropProb
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-distributed mixer
// for the drop decision.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Crash marks a world rank dead: sends to it fail with ErrRankDown
// immediately, and receives from it fail once its already-delivered messages
// drain (in-flight data is not destroyed — a rank that sent before dying
// still gets its messages delivered, like a real network).
func (w *World) Crash(rank int) {
	w.downMu.Lock()
	if w.down == nil {
		w.down = make(map[int]bool)
	}
	already := w.down[rank]
	w.down[rank] = true
	w.downMu.Unlock()
	if already {
		return
	}
	w.boxes[rank].markOwnerDown()
	for r, b := range w.boxes {
		if r != rank {
			b.markDown(rank)
		}
	}
}

// DownRanks returns the ranks crashed so far, sorted.
func (w *World) DownRanks() []int {
	w.downMu.Lock()
	defer w.downMu.Unlock()
	ranks := make([]int, 0, len(w.down))
	for r := range w.down {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks
}

// faultTransport is the outermost transport wrapper of a fault-injected
// world: it owns the straggler delay, the deterministic message drops, and
// timeout-based failure detection on Recv. Crash-state checks live in the
// mailboxes themselves (put/get), so every transport layering sees them.
type faultTransport struct {
	Transport
	inj  *FaultInjector
	rank int
}

// Send implements Transport.
func (t *faultTransport) Send(dst int, ctx uint64, tag int, data []byte) error {
	if t.inj.crashed[t.rank].Load() {
		return &RankDownError{Rank: t.rank, Cause: errInjectedCrash}
	}
	if t.inj.drop(t.rank) {
		return nil // lost on the wire
	}
	t.delay(len(data))
	return t.Transport.Send(dst, ctx, tag, data)
}

// SendOwned implements Transport; a dropped or refused buffer is released to
// the pool, honoring the ownership transfer.
func (t *faultTransport) SendOwned(dst int, ctx uint64, tag int, data []byte) error {
	if t.inj.crashed[t.rank].Load() {
		PutBytes(data)
		return &RankDownError{Rank: t.rank, Cause: errInjectedCrash}
	}
	if t.inj.drop(t.rank) {
		PutBytes(data)
		return nil // lost on the wire
	}
	t.delay(len(data))
	return t.Transport.SendOwned(dst, ctx, tag, data)
}

// Recv implements Transport, bounding the wait by the plan's detection
// timeout. The topology and latency wrappers only override sends, so going
// straight to the mailbox here sees exactly the messages the inner transport
// would deliver.
func (t *faultTransport) Recv(src int, ctx uint64, tag int) ([]byte, error) {
	if t.inj.crashed[t.rank].Load() {
		return nil, &RankDownError{Rank: t.rank, Cause: errInjectedCrash}
	}
	if d := t.inj.plan.DetectTimeout; d > 0 {
		return t.inj.world.boxes[t.rank].getTimeout(msgKey{src: src, ctx: ctx, tag: tag}, d)
	}
	return t.Transport.Recv(src, ctx, tag)
}

// delay charges this rank's straggler profile, if any.
func (t *faultTransport) delay(n int) {
	if p, ok := t.inj.plan.Slow[t.rank]; ok {
		if d := p.Delay(n); d > 0 {
			time.Sleep(d)
		}
	}
}

// sendNeverBlocks keeps Isend async when this rank pays a straggler delay;
// otherwise it defers to the wrapped transport's promotion.
func (t *faultTransport) sendNeverBlocks() bool {
	if _, ok := t.inj.plan.Slow[t.rank]; ok {
		return false
	}
	nb, ok := t.Transport.(nonBlockingSender)
	return ok && nb.sendNeverBlocks()
}
