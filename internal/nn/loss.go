package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy is the classification criterion: softmax over logits
// followed by negative log-likelihood, averaged over the batch. In Torch this
// is the LogSoftMax+ClassNLLCriterion pair whose evaluation the paper's
// optimized Data-Parallel Table moves onto every GPU (Section 4.3).
type SoftmaxCrossEntropy struct {
	probs  *tensor.Tensor
	labels []int
}

// NewSoftmaxCrossEntropy constructs the criterion.
func NewSoftmaxCrossEntropy() *SoftmaxCrossEntropy { return &SoftmaxCrossEntropy{} }

// Forward computes the mean cross-entropy loss of logits (N, K) against
// labels (len N, values in [0,K)).
func (s *SoftmaxCrossEntropy) Forward(logits *tensor.Tensor, labels []int) (float64, error) {
	if logits.NumDims() != 2 {
		return 0, fmt.Errorf("nn: criterion wants 2-D logits, got %v", logits.Shape())
	}
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		return 0, fmt.Errorf("nn: criterion got %d labels for batch %d", len(labels), n)
	}
	s.probs = tensor.New(n, k)
	s.labels = append(s.labels[:0], labels...)
	var loss float64
	for i := 0; i < n; i++ {
		if labels[i] < 0 || labels[i] >= k {
			return 0, fmt.Errorf("nn: label %d out of range [0,%d)", labels[i], k)
		}
		row := logits.Data[i*k : (i+1)*k]
		prow := s.probs.Data[i*k : (i+1)*k]
		// Numerically stable softmax: subtract the row max.
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - m))
			prow[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range prow {
			prow[j] *= inv
		}
		p := float64(prow[labels[i]])
		if p < 1e-30 {
			p = 1e-30
		}
		loss -= math.Log(p)
	}
	return loss / float64(n), nil
}

// Backward returns dLoss/dLogits for the last Forward: (softmax - onehot)/N.
func (s *SoftmaxCrossEntropy) Backward() *tensor.Tensor {
	if s.probs == nil {
		panic("nn: criterion Backward before Forward")
	}
	n, k := s.probs.Dim(0), s.probs.Dim(1)
	grad := s.probs.Clone()
	invN := float32(1) / float32(n)
	for i := 0; i < n; i++ {
		grad.Data[i*k+s.labels[i]] -= 1
	}
	grad.Scale(invN)
	return grad
}

// Accuracy returns the fraction of rows of logits whose argmax equals the
// label (top-1 accuracy, the metric in Figures 13-14).
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n, k := logits.Dim(0), logits.Dim(1)
	if n == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		best, bi := row[0], 0
		for j, v := range row[1:] {
			if v > best {
				best, bi = v, j+1
			}
		}
		if bi == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// TopKAccuracy returns the fraction of rows where the true label is within
// the k highest logits.
func TopKAccuracy(logits *tensor.Tensor, labels []int, k int) float64 {
	n, classes := logits.Dim(0), logits.Dim(1)
	if n == 0 {
		return 0
	}
	if k > classes {
		k = classes
	}
	correct := 0
	for i := 0; i < n; i++ {
		row := logits.Data[i*classes : (i+1)*classes]
		target := row[labels[i]]
		// Count how many strictly exceed the target logit.
		higher := 0
		for _, v := range row {
			if v > target {
				higher++
			}
		}
		if higher < k {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
