package simnet

import (
	"math"
	"testing"
)

func testTree(t *testing.T, hosts int) *FatTree {
	t.Helper()
	tree, err := NewFatTree(hosts, 4, 2, 2, 10e9, 40e9, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestSingleFlowTime(t *testing.T) {
	tree := testTree(t, 8)
	sim := NewSim(tree)
	id := sim.MustAddFlow(0, 1, 0, 10e9, nil, 0) // 10 GB over 10 GB/s
	finishes, makespan, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 + tree.Latency
	if math.Abs(finishes[id]-want) > 1e-6 {
		t.Fatalf("finish %v, want %v", finishes[id], want)
	}
	if makespan != finishes[id] {
		t.Fatal("makespan should equal sole flow's finish")
	}
}

func TestTwoFlowsShareLink(t *testing.T) {
	tree := testTree(t, 8)
	sim := NewSim(tree)
	// Both flows leave host 0 on rail 0: they share the 10 GB/s uplink.
	a := sim.MustAddFlow(0, 1, 0, 10e9, nil, 0)
	b := sim.MustAddFlow(0, 2, 0, 10e9, nil, 0)
	finishes, _, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Fair share 5 GB/s each: 2 seconds.
	for _, id := range []FlowID{a, b} {
		if math.Abs(finishes[id]-2.0-tree.Latency) > 1e-6 {
			t.Fatalf("shared flow finish %v, want ~2", finishes[id])
		}
	}
}

func TestSeparateRailsDontShare(t *testing.T) {
	tree := testTree(t, 8)
	sim := NewSim(tree)
	a := sim.MustAddFlow(0, 1, 0, 10e9, nil, 0)
	b := sim.MustAddFlow(0, 2, 1, 10e9, nil, 0) // other adapter
	finishes, _, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []FlowID{a, b} {
		if math.Abs(finishes[id]-1.0-tree.Latency) > 1e-6 {
			t.Fatalf("dual-rail flow finish %v, want ~1", finishes[id])
		}
	}
}

func TestDependencyChainSerializes(t *testing.T) {
	tree := testTree(t, 8)
	sim := NewSim(tree)
	a := sim.MustAddFlow(0, 1, 0, 10e9, nil, 0)
	b := sim.MustAddFlow(1, 2, 0, 10e9, []FlowID{a}, 0)
	finishes, _, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if finishes[b] < finishes[a]+1.0 {
		t.Fatalf("dependent flow finished at %v, dep at %v", finishes[b], finishes[a])
	}
}

func TestDelayCharged(t *testing.T) {
	tree := testTree(t, 8)
	sim := NewSim(tree)
	id := sim.MustAddFlow(0, 1, 0, 10e9, nil, 0.5)
	finishes, _, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 + 1.0 + tree.Latency
	if math.Abs(finishes[id]-want) > 1e-6 {
		t.Fatalf("delayed flow finish %v, want %v", finishes[id], want)
	}
}

func TestZeroByteFlowIsSyncNode(t *testing.T) {
	tree := testTree(t, 8)
	sim := NewSim(tree)
	a := sim.MustAddFlow(0, 1, 0, 10e9, nil, 0)
	b := sim.MustAddFlow(2, 3, 0, 5e9, nil, 0)
	sync := sim.MustAddFlow(0, 0, 0, 0, []FlowID{a, b}, 0)
	c := sim.MustAddFlow(1, 0, 0, 10e9, []FlowID{sync}, 0)
	finishes, _, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if finishes[sync] < math.Max(finishes[a], finishes[b]) {
		t.Fatal("sync node fired before its deps")
	}
	if finishes[c] < finishes[sync]+1.0 {
		t.Fatalf("flow after sync finished too early: %v", finishes[c])
	}
}

func TestCrossLeafRouteUsesFabric(t *testing.T) {
	tree := testTree(t, 8) // hosts 0-3 leaf 0, hosts 4-7 leaf 1
	route, err := tree.Route(0, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 4 {
		t.Fatalf("cross-leaf route has %d links, want 4", len(route))
	}
	same, err := tree.Route(0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(same) != 2 {
		t.Fatalf("same-leaf route has %d links, want 2", len(same))
	}
	loop, err := tree.Route(3, 3, 0)
	if err != nil || loop != nil {
		t.Fatalf("loopback route should be empty, got %v (%v)", loop, err)
	}
	if _, err := tree.Route(0, 99, 0); err == nil {
		t.Fatal("out-of-range host should error")
	}
}

func TestPipelineOverlaps(t *testing.T) {
	// Two-hop pipeline with 4 segments must be faster than the serial sum
	// of both hops but slower than one hop.
	tree := testTree(t, 8)
	sim := NewSim(tree)
	const seg = 2.5e9 // 4 segments of 2.5 GB over 10 GB/s = 0.25 s each
	var prevHop1, prevHop2 FlowID = -1, -1
	var last FlowID
	for s := 0; s < 4; s++ {
		// A pipelined sender serializes its own segments: chain each hop's
		// segment s after its segment s-1.
		var deps1 []FlowID
		if prevHop1 >= 0 {
			deps1 = append(deps1, prevHop1)
		}
		hop1 := sim.MustAddFlow(0, 1, 0, seg, deps1, 0)
		deps2 := []FlowID{hop1}
		if prevHop2 >= 0 {
			deps2 = append(deps2, prevHop2)
		}
		hop2 := sim.MustAddFlow(1, 2, 0, seg, deps2, 0)
		prevHop1, prevHop2 = hop1, hop2
		last = hop2
	}
	finishes, _, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	total := finishes[last]
	if total > 1.6 { // serial would be 2.0; pipelined ideal is 1.25
		t.Fatalf("pipeline total %v, want < 1.6 (overlap)", total)
	}
	if total < 1.2 {
		t.Fatalf("pipeline total %v faster than physically possible", total)
	}
}

func TestOversubscribedFabricSlower(t *testing.T) {
	// Cross-leaf all-to-all under a thin fabric vs a fat one.
	makespanWith := func(fabricBW float64) float64 {
		tree, err := NewFatTree(8, 4, 1, 1, 10e9, fabricBW, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		sim := NewSim(tree)
		for src := 0; src < 4; src++ {
			sim.MustAddFlow(src, 4+src, 0, 10e9, nil, 0)
		}
		_, makespan, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return makespan
	}
	thin := makespanWith(10e9) // 4 flows share one 10 GB/s spine link
	fat := makespanWith(160e9) // fabric not the bottleneck
	if thin < 3.9 || fat > 1.1 {
		t.Fatalf("thin fabric %v (want ~4), fat fabric %v (want ~1)", thin, fat)
	}
}

func TestAddFlowValidation(t *testing.T) {
	tree := testTree(t, 8)
	sim := NewSim(tree)
	if _, err := sim.AddFlow(0, 1, 0, -5, nil, 0); err == nil {
		t.Fatal("negative bytes should error")
	}
	if _, err := sim.AddFlow(0, 1, 0, 5, []FlowID{99}, 0); err == nil {
		t.Fatal("bad dep should error")
	}
	if _, err := sim.AddFlow(0, 1, 0, 5, nil, -1); err == nil {
		t.Fatal("negative delay should error")
	}
}

func TestMinskyFabric(t *testing.T) {
	tree := MinskyFabric(32)
	if tree.Hosts != 32 || tree.Rails != 2 {
		t.Fatalf("minsky fabric %d hosts %d rails", tree.Hosts, tree.Rails)
	}
	// A single large flow should move at one rail's bandwidth.
	sim := NewSim(tree)
	id := sim.MustAddFlow(0, 9, 0, 11e9, nil, 0)
	finishes, _, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(finishes[id]-1.0) > 0.01 {
		t.Fatalf("minsky single-flow time %v, want ~1s", finishes[id])
	}
}

func TestNewFatTreeValidation(t *testing.T) {
	if _, err := NewFatTree(0, 1, 1, 1, 1, 1, 0); err == nil {
		t.Fatal("zero hosts should error")
	}
	if _, err := NewFatTree(4, 2, 1, 1, 0, 1, 0); err == nil {
		t.Fatal("zero bandwidth should error")
	}
}
